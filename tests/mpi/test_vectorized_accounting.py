"""Bit-identity of the vectorized per-rank accounting.

The P=1024 scaling work turned every fused charge path into a numpy
array expression (``World.clocks`` and the message/byte/collective
counters are rank-indexed arrays, trace recording is batched, and the
``allreduce`` fold short-circuits).  The contract that made that safe is
*bit-identity*: each vectorized charge must produce exactly the floats,
counters, and trace events of the scalar per-rank loops it replaced.

This module pins the contract two ways:

* a hypothesis property drives :class:`FusedComm` and an in-test scalar
  reference (the pre-vectorization loops, verbatim) through random
  charge sequences at P in {1, 2, 4, 7, 16} and compares clocks,
  counters, and the canonical trace stream bitwise;
* the allreduce fold shortcuts (ufunc accumulate, integer closed forms,
  memo, fixed-point exit) are checked against the rank-order Python
  fold at P=1024 for every builtin reduction op.

The pinned golden traces in tests/trace/golden/ provide the third leg:
they were recorded before vectorization and must keep passing unchanged.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import compile_source
from repro.mpi import (
    FATTREE_CLUSTER,
    GPU_CLUSTER,
    MEIKO_CS2,
    SPARC20_CLUSTER,
    SUN_ENTERPRISE,
    run_spmd,
)
from repro.mpi.comm import LAND, LOR, MAX, MIN, PROD, SUM
from repro.mpi.fused import FusedComm
from repro.trace import WorldTrace, canonical_events

NPROCS = (1, 2, 4, 7, 16)
MACHINES = (MEIKO_CS2, SUN_ENTERPRISE, SPARC20_CLUSTER,
            FATTREE_CLUSTER, GPU_CLUSTER)


# -------------------------------------------------------------------------- #
# the scalar reference: the pre-vectorization charge loops, verbatim
# -------------------------------------------------------------------------- #


class ScalarReference:
    """The fused accounting as it was before vectorization: Python-list
    clocks, per-rank loops, one recorder method call per rank."""

    def __init__(self, nprocs, machine, trace=None):
        self.size = nprocs
        self.machine = machine
        self.clocks = [0.0] * nprocs
        self.messages_sent = 0
        self.bytes_sent = 0
        self.collectives = 0
        self.collective_counts = {}
        self.line = 0
        self._recs = None if trace is None else trace.recorders

    def advance(self, dt):
        for r in range(self.size):
            self.clocks[r] += dt
        if self._recs is not None:
            for rec in self._recs:
                rec.charge(self.line, dt)

    def compute(self, flops=0, elems=0, mem=0):
        dt = self.machine.compute_time(
            flops=flops, elems=elems, mem=mem, active_cpus=self.size)
        if self._recs is not None and dt > 0.0:
            for r, rec in enumerate(self._recs):
                rec.compute(self.line, self.clocks[r], dt)
        self.advance(dt)

    def overhead(self, calls=1):
        if self._recs is not None:
            for rec in self._recs:
                rec.calls(self.line, calls)
        self.advance(calls * self.machine.cpu.call_overhead)

    def compute_ranks(self, flops=None, elems=None, mem=None):
        for r in range(self.size):
            dt = self.machine.compute_time(
                flops=flops[r] if flops is not None else 0,
                elems=elems[r] if elems is not None else 0,
                mem=mem[r] if mem is not None else 0,
                active_cpus=self.size)
            if self._recs is not None:
                if dt > 0.0:
                    self._recs[r].compute(self.line, self.clocks[r], dt)
                self._recs[r].charge(self.line, dt)
            self.clocks[r] += dt

    def _sync_cost(self, op, cost, nbytes=0):
        pre = list(self.clocks)
        tnew = max(pre) + cost
        self.clocks[:] = [tnew] * self.size
        self.collectives += 1
        self.collective_counts[op] = self.collective_counts.get(op, 0) + 1
        if self._recs is not None:
            for r, rec in enumerate(self._recs):
                rec.collective(op, self.line, pre[r], tnew - pre[r], nbytes)

    def charge_barrier(self):
        self._sync_cost("barrier", self.machine.collective_time(
            "barrier", 0, self.size))

    def charge_bcast(self, nbytes):
        if self.size == 1:
            self.collective_counts["bcast"] = \
                self.collective_counts.get("bcast", 0) + 1
            if self._recs is not None:
                self._recs[0].collective("bcast", self.line,
                                         self.clocks[0], 0.0, nbytes)
            return
        self._sync_cost("bcast", self.machine.collective_time(
            "bcast", nbytes, self.size), nbytes)

    def charge_reduce(self, nbytes, kind="allreduce"):
        if self.size == 1:
            self.collective_counts[kind] = \
                self.collective_counts.get(kind, 0) + 1
            if self._recs is not None:
                self._recs[0].collective(kind, self.line,
                                         self.clocks[0], 0.0, nbytes)
            return
        cost = self.machine.collective_time(kind, nbytes, self.size)
        cost += int(np.ceil(np.log2(self.size))) * (nbytes / 8.0) \
            * self.machine.cpu.elem_time
        self._sync_cost(kind, cost, nbytes)

    def charge_allgather(self, nbytes):
        self._sync_cost("allgather", self.machine.collective_time(
            "allgather", nbytes, self.size), nbytes)

    def charge_alltoall(self, per_nbytes):
        self._sync_cost("alltoall", self.machine.collective_time(
            "alltoall", per_nbytes, self.size), per_nbytes)

    def charge_scan(self, nbytes):
        self._sync_cost("scan", self.machine.collective_time(
            "allreduce", nbytes, self.size), nbytes)

    def ring_exchange(self, nbytes, forward):
        p = self.size
        if p == 1:
            return
        pre = list(self.clocks)
        arrivals = [0.0] * p
        for r in range(p):
            dest = (r + 1) % p if forward else (r - 1) % p
            arrivals[dest] = pre[r] + self.machine.p2p_time(r, dest, nbytes)
            self.clocks[r] = pre[r] + \
                self.machine.link_between(r, dest).latency * 0.5
            self.messages_sent += 1
            self.bytes_sent += nbytes
            if self._recs is not None:
                self._recs[r].send(self.line, pre[r],
                                   self.clocks[r] - pre[r], dest, 0, nbytes)
        for r in range(p):
            me = self.clocks[r]
            self.clocks[r] = max(me, arrivals[r])
            if self._recs is not None:
                source = (r - 1) % p if forward else (r + 1) % p
                self._recs[r].recv(self.line, me,
                                   max(0.0, arrivals[r] - me),
                                   source, 0, nbytes)


def _loop_fold(op, obj, n):
    """The lockstep rank-order fold, verbatim."""
    acc = obj
    for _ in range(n - 1):
        acc = op(acc, obj)
    return acc


# -------------------------------------------------------------------------- #
# the hypothesis property
# -------------------------------------------------------------------------- #

_dt = st.floats(min_value=0.0, max_value=1e-3, allow_nan=False)
_count = st.integers(min_value=0, max_value=5000)
_nbytes = st.integers(min_value=0, max_value=1 << 16)

_charge_op = st.one_of(
    st.tuples(st.just("advance"), _dt),
    st.tuples(st.just("compute"), _count, _count, _count),
    st.tuples(st.just("overhead"), st.integers(min_value=1, max_value=9)),
    st.tuples(st.just("compute_ranks"),
              st.lists(_count, min_size=16, max_size=16),
              st.lists(_count, min_size=16, max_size=16)),
    st.tuples(st.just("barrier")),
    st.tuples(st.just("bcast"), _nbytes),
    st.tuples(st.just("reduce"), _nbytes),
    st.tuples(st.just("allgather"), _nbytes),
    st.tuples(st.just("alltoall"), _nbytes),
    st.tuples(st.just("scan"), _nbytes),
    st.tuples(st.just("ring"), _nbytes, st.booleans()),
)


def _apply(comm, step, line):
    comm.line = line
    kind = step[0]
    if kind == "advance":
        comm.advance(step[1])
    elif kind == "compute":
        comm.compute(flops=step[1], elems=step[2], mem=step[3])
    elif kind == "overhead":
        comm.overhead(step[1])
    elif kind == "compute_ranks":
        comm.compute_ranks(elems=step[1][:comm.size],
                           mem=step[2][:comm.size])
    elif kind == "barrier":
        comm.charge_barrier()
    elif kind == "bcast":
        comm.charge_bcast(step[1])
    elif kind == "reduce":
        comm.charge_reduce(step[1])
    elif kind == "allgather":
        comm.charge_allgather(step[1])
    elif kind == "alltoall":
        comm.charge_alltoall(step[1])
    elif kind == "scan":
        comm.charge_scan(step[1])
    elif kind == "ring":
        comm.ring_exchange(step[1], step[2])
    else:  # pragma: no cover
        raise AssertionError(kind)


@settings(max_examples=40, deadline=None)
@given(steps=st.lists(_charge_op, min_size=1, max_size=12),
       nprocs=st.sampled_from(NPROCS),
       machine_idx=st.integers(min_value=0, max_value=len(MACHINES) - 1))
def test_vectorized_charges_bit_identical_to_scalar_loops(
        steps, nprocs, machine_idx):
    machine = MACHINES[machine_idx]
    if nprocs > machine.max_cpus:  # e.g. P=16 on the 8-CPU Enterprise
        nprocs = machine.max_cpus
    fused_trace = WorldTrace(nprocs)
    scalar_trace = WorldTrace(nprocs)
    fused = FusedComm(nprocs, machine, trace=fused_trace)
    scalar = ScalarReference(nprocs, machine, trace=scalar_trace)
    for i, step in enumerate(steps):
        _apply(fused, step, line=1 + i % 5)
        _apply(scalar, step, line=1 + i % 5)
    # clocks: exact float equality, element by element
    assert fused.world.clocks.tolist() == scalar.clocks
    # counters
    assert fused.world.messages_sent == scalar.messages_sent
    assert fused.world.bytes_sent == scalar.bytes_sent
    assert fused.world.collectives == scalar.collectives
    assert fused.world.collective_counts == scalar.collective_counts
    # per-rank counter arrays are consistent with their totals
    assert int(fused.world.rank_messages.sum()) == scalar.messages_sent
    assert int(fused.world.rank_bytes.sum()) == scalar.bytes_sent
    # trace stream: byte-identical canonical serialization, and the
    # per-line accumulator rows (including zero-valued rows) match
    assert canonical_events(fused_trace) == canonical_events(scalar_trace)
    for frec, srec in zip(fused_trace.recorders, scalar_trace.recorders):
        assert frec.lines == srec.lines


def test_compute_time_vec_matches_scalar_elementwise():
    rng = np.random.default_rng(7)
    for machine in MACHINES:
        for active in (1, 4, 16, 1024):
            flops = rng.integers(0, 10**7, size=33)
            elems = rng.integers(0, 10**7, size=33)
            mem = rng.integers(0, 10**7, size=33)
            vec = machine.compute_time_vec(flops=flops, elems=elems,
                                           mem=mem, active_cpus=active)
            for i in range(33):
                assert vec[i] == machine.compute_time(
                    flops=int(flops[i]), elems=int(elems[i]),
                    mem=int(mem[i]), active_cpus=active)


def test_p2p_time_vec_matches_scalar_elementwise():
    for machine in MACHINES:
        p = 64
        ranks = np.arange(p)
        for step in (1, -1):
            dests = (ranks + step) % p
            lat, ptime = machine.p2p_time_vec(ranks, dests, 4096)
            for r in range(p):
                assert ptime[r] == machine.p2p_time(r, int(dests[r]), 4096)
                assert lat[r] == machine.link_between(r, int(dests[r])).latency


# -------------------------------------------------------------------------- #
# backend differential on a compiled program, clocks + counters + trace
# -------------------------------------------------------------------------- #

_SOURCE = """\
n = 96;
x = linspace(0, 2*pi, n);
u = sin(x);
for s = 1:3
    left = circshift(u, 1);
    right = circshift(u, -1);
    u = u + 0.1 * (left - 2 * u + right);
end
e = sum(u .* u);
"""


@pytest.mark.parametrize("nprocs", NPROCS)
def test_fused_matches_lockstep_on_compiled_program(nprocs):
    program = compile_source(_SOURCE, name="vec_acct")
    runs = {}
    for backend in ("lockstep", "threads", "fused"):
        result = program.run(nprocs=nprocs, machine=MEIKO_CS2,
                             backend=backend, trace=True)
        assert result.spmd.backend == backend  # no silent fallback
        runs[backend] = result
    base = runs["lockstep"]
    for backend in ("threads", "fused"):
        other = runs[backend]
        assert other.spmd.times == base.spmd.times
        assert other.spmd.messages_sent == base.spmd.messages_sent
        assert other.spmd.bytes_sent == base.spmd.bytes_sent
        assert other.spmd.collectives == base.spmd.collectives
        assert other.spmd.collective_counts == base.spmd.collective_counts
        assert canonical_events(other.spmd.trace) == \
            canonical_events(base.spmd.trace)
    # result times are plain Python floats (JSON/serialization surface)
    assert all(type(t) is float for t in base.spmd.times)


# -------------------------------------------------------------------------- #
# the allreduce fold shortcuts, P=1024
# -------------------------------------------------------------------------- #


class TestAllreduceFoldP1024:
    P = 1024

    def _check(self, op, obj):
        comm = FusedComm(self.P, FATTREE_CLUSTER)
        got = comm._fold_identical(op, obj)
        want = _loop_fold(op, obj, self.P)
        if isinstance(want, float) and math.isnan(want):
            assert isinstance(got, float) and math.isnan(got)
        else:
            assert got == want
            if isinstance(want, float):
                assert repr(got) == repr(want)  # bit-level: 0.0 vs -0.0

    @pytest.mark.parametrize("op", [SUM, PROD, MAX, MIN, LAND, LOR])
    @pytest.mark.parametrize(
        "obj", [0.0, -0.0, 1.0, -1.0, 0.1, 3.0, 1e-300, 1e300,
                float("inf"), float("nan")])
    def test_float_fold_bit_identical(self, op, obj):
        self._check(op, obj)

    @pytest.mark.parametrize("op", [SUM, PROD, MAX, MIN])
    @pytest.mark.parametrize("obj", [0, 1, -3, 2**40])
    def test_int_fold_exact(self, op, obj):
        self._check(op, obj)

    def test_int_sum_has_no_fixed_width_overflow(self):
        comm = FusedComm(self.P, FATTREE_CLUSTER)
        big = 2**61
        assert comm._fold_identical(SUM, big) == big * self.P
        assert comm._fold_identical(PROD, 2) == 2**self.P

    def test_custom_op_reaches_fixed_point(self):
        def saturating(a, b):
            return min(a + b, 100.0)

        self._check(saturating, 7.0)

    def test_custom_op_without_fixed_point(self):
        def drift(a, b):
            return a * 0.5 + b

        self._check(drift, 3.0)

    def test_fold_is_memoized(self):
        comm = FusedComm(self.P, FATTREE_CLUSTER)
        first = comm._fold_identical(SUM, 0.3)
        assert (id(SUM), self.P, "float", 0.3) in comm._fold_memo
        assert comm._fold_identical(SUM, 0.3) == first

    def test_allreduce_charges_and_folds_at_p1024(self):
        comm = FusedComm(self.P, FATTREE_CLUSTER)
        assert comm.allreduce(1.0) == _loop_fold(SUM, 1.0, self.P)
        assert comm.world.collective_counts == {"allreduce": 1}
        clocks = comm.world.clocks
        assert clocks[0] > 0
        assert clocks.tolist() == [clocks[0]] * self.P

    @pytest.mark.parametrize("nprocs", NPROCS)
    def test_small_p_matches_loop(self, nprocs):
        for op in (SUM, PROD, MAX, MIN):
            for obj in (0.25, -2.0, 3):
                comm = FusedComm(nprocs, MEIKO_CS2)
                assert comm._fold_identical(op, obj) == \
                    _loop_fold(op, obj, nprocs)
