"""Differential testing: the lockstep and threads backends must be
observationally identical.

The scheduler changes *when* carrier threads run, never *what* the
simulated machine does — virtual clocks, message/byte counts, and
collective tallies are all functions of the program alone.  Randomized
SPMD programs (hypothesis) run on both backends and every observable
must match bit-for-bit.

The generated programs are deterministic by construction: point-to-point
uses explicit (source, tag) pairs (no multi-sender ANY_SOURCE races) and
collective contributions have equal wire sizes on every rank (cost
formulas read ``sizeof`` on whichever rank runs the combine).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.mpi import MEIKO_CS2, run_spmd

# -- program generator --------------------------------------------------- #


@st.composite
def spmd_programs(draw):
    """(nprocs, ops): a random straight-line SPMD program."""
    nprocs = draw(st.integers(min_value=2, max_value=5))
    n_ops = draw(st.integers(min_value=1, max_value=10))
    ops = []
    for _ in range(n_ops):
        kind = draw(st.sampled_from(
            ["compute", "ring", "p2p", "allreduce", "bcast", "barrier",
             "allgather", "scan", "array_ring"]))
        if kind == "compute":
            ops.append(("compute", draw(st.integers(1, 2000))))
        elif kind in ("ring", "array_ring"):
            ops.append((kind, draw(st.integers(0, 3))))
        elif kind == "p2p":
            src = draw(st.integers(0, nprocs - 1))
            dst = (src + 1 + draw(st.integers(0, nprocs - 2))) % nprocs
            ops.append(("p2p", src, dst, draw(st.integers(0, 3))))
        elif kind == "bcast":
            ops.append(("bcast", draw(st.integers(0, nprocs - 1))))
        else:
            ops.append((kind,))
    return nprocs, ops


def _make_program(ops):
    def prog(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        acc = float(comm.rank + 1)
        for op in ops:
            kind = op[0]
            if kind == "compute":
                comm.compute(flops=op[1] * (comm.rank + 1))
            elif kind == "ring":
                acc = float(comm.sendrecv(acc, dest=right, sendtag=op[1],
                                          source=left, recvtag=op[1]))
            elif kind == "array_ring":
                got = comm.sendrecv(np.full(4, acc), dest=right,
                                    sendtag=op[1], source=left,
                                    recvtag=op[1])
                acc = float(np.asarray(got).sum())
            elif kind == "p2p":
                _, src, dst, tag = op
                if comm.rank == src:
                    comm.send(acc, dest=dst, tag=tag)
                elif comm.rank == dst:
                    acc += float(comm.recv(source=src, tag=tag))
            elif kind == "allreduce":
                acc = float(comm.allreduce(acc))
            elif kind == "bcast":
                acc = float(comm.bcast(acc, root=op[1]))
            elif kind == "barrier":
                comm.barrier()
            elif kind == "allgather":
                acc = float(sum(comm.allgather(acc)))
            elif kind == "scan":
                acc = float(comm.scan(acc))
        return acc
    return prog


def _observables(result):
    return {
        "results": result.results,
        "times": result.times,
        "messages_sent": result.messages_sent,
        "bytes_sent": result.bytes_sent,
        "collectives": result.collectives,
        "collective_counts": result.collective_counts,
    }


# -- the differential property ------------------------------------------- #


@settings(max_examples=25, deadline=None)
@given(spmd_programs())
def test_backends_observationally_identical(program):
    nprocs, ops = program
    prog = _make_program(ops)
    lockstep = run_spmd(nprocs, MEIKO_CS2, prog, backend="lockstep")
    threads = run_spmd(nprocs, MEIKO_CS2, prog, backend="threads")
    assert _observables(lockstep) == _observables(threads)


def test_backends_identical_on_mixed_fixed_program():
    """A dense hand-written program exercising every primitive at once
    (kept non-random so failures reproduce without hypothesis)."""
    def prog(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        local = np.full(8, float(comm.rank + 1))
        for step in range(3):
            local = np.asarray(
                comm.sendrecv(local, dest=right, source=left,
                              sendtag=step, recvtag=step))
            comm.compute(flops=50 * (comm.rank + 1), mem=local.size)
            total = comm.allreduce(float(local.sum()))
            local = local + comm.bcast(total, root=step % comm.size)
            request = comm.irecv(source=left, tag=100 + step)
            comm.send(float(local[0]), dest=right, tag=100 + step)
            while not request.test():
                pass
            local[0] = request.wait()
        parts = comm.allgather(float(local.sum()))
        comm.barrier()
        return comm.scan(sum(parts))

    lockstep = run_spmd(4, MEIKO_CS2, prog, backend="lockstep")
    threads = run_spmd(4, MEIKO_CS2, prog, backend="threads")
    assert _observables(lockstep) == _observables(threads)
    assert lockstep.collective_counts["allreduce"] == 3
    assert lockstep.collective_counts["scan"] == 1
