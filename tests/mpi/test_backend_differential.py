"""Differential testing: the lockstep, threads, and fused backends must
be observationally identical.

The scheduler changes *when* carrier threads run (or whether ranks run
at all, for fused), never *what* the simulated machine does — virtual
clocks, message/byte counts, and collective tallies are all functions of
the program alone.  Randomized SPMD programs (hypothesis) run on every
backend and every observable must match bit-for-bit.

The generated programs are deterministic by construction: point-to-point
uses explicit (source, tag) pairs (no multi-sender ANY_SOURCE races) and
collective cost formulas charge the symmetric ``max`` of the per-slot
``sizeof`` contributions, so no rank's wire size is privileged.

The raw-comm programs below all read ``comm.rank``, so under
``backend="fused"`` they exercise the FusionDivergence → lockstep
fallback: the run must still be observationally identical (it *is* a
lockstep run, transparently).  Compiled MATLAB programs are rank-
agnostic at the source level and execute genuinely fused.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.compiler import compile_source
from repro.mpi import MEIKO_CS2, run_spmd

# -- program generator --------------------------------------------------- #


@st.composite
def spmd_programs(draw):
    """(nprocs, ops): a random straight-line SPMD program."""
    nprocs = draw(st.integers(min_value=2, max_value=5))
    n_ops = draw(st.integers(min_value=1, max_value=10))
    ops = []
    for _ in range(n_ops):
        kind = draw(st.sampled_from(
            ["compute", "ring", "p2p", "allreduce", "bcast", "barrier",
             "allgather", "scan", "array_ring"]))
        if kind == "compute":
            ops.append(("compute", draw(st.integers(1, 2000))))
        elif kind in ("ring", "array_ring"):
            ops.append((kind, draw(st.integers(0, 3))))
        elif kind == "p2p":
            src = draw(st.integers(0, nprocs - 1))
            dst = (src + 1 + draw(st.integers(0, nprocs - 2))) % nprocs
            ops.append(("p2p", src, dst, draw(st.integers(0, 3))))
        elif kind == "bcast":
            ops.append(("bcast", draw(st.integers(0, nprocs - 1))))
        else:
            ops.append((kind,))
    return nprocs, ops


def _make_program(ops):
    def prog(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        acc = float(comm.rank + 1)
        for op in ops:
            kind = op[0]
            if kind == "compute":
                comm.compute(flops=op[1] * (comm.rank + 1))
            elif kind == "ring":
                acc = float(comm.sendrecv(acc, dest=right, sendtag=op[1],
                                          source=left, recvtag=op[1]))
            elif kind == "array_ring":
                got = comm.sendrecv(np.full(4, acc), dest=right,
                                    sendtag=op[1], source=left,
                                    recvtag=op[1])
                acc = float(np.asarray(got).sum())
            elif kind == "p2p":
                _, src, dst, tag = op
                if comm.rank == src:
                    comm.send(acc, dest=dst, tag=tag)
                elif comm.rank == dst:
                    acc += float(comm.recv(source=src, tag=tag))
            elif kind == "allreduce":
                acc = float(comm.allreduce(acc))
            elif kind == "bcast":
                acc = float(comm.bcast(acc, root=op[1]))
            elif kind == "barrier":
                comm.barrier()
            elif kind == "allgather":
                acc = float(sum(comm.allgather(acc)))
            elif kind == "scan":
                acc = float(comm.scan(acc))
        return acc
    return prog


def _observables(result):
    return {
        "results": result.results,
        "times": result.times,
        "messages_sent": result.messages_sent,
        "bytes_sent": result.bytes_sent,
        "collectives": result.collectives,
        "collective_counts": result.collective_counts,
    }


# -- the differential property ------------------------------------------- #


@settings(max_examples=25, deadline=None)
@given(spmd_programs())
def test_backends_observationally_identical(program):
    nprocs, ops = program
    prog = _make_program(ops)
    lockstep = run_spmd(nprocs, MEIKO_CS2, prog, backend="lockstep")
    threads = run_spmd(nprocs, MEIKO_CS2, prog, backend="threads")
    fused = run_spmd(nprocs, MEIKO_CS2, prog, backend="fused")
    assert _observables(lockstep) == _observables(threads)
    # prog reads comm.rank, so fused falls back to lockstep — the result
    # must be indistinguishable from a lockstep run
    assert fused.backend == "lockstep"
    assert _observables(lockstep) == _observables(fused)


# -- compiled-program differential: fused runs for real ------------------ #

_STMT_POOL = [
    "a = a + rand(n, n);",
    "a = a * a';",
    "a = tril(a) + triu(a);",
    "v = a * v;",
    "v = v / (norm(v) + 1);",
    "v = cumsum(v);",
    "v = sort(v);",
    "v = circshift(v, 2);",
    "s = sum(v); v = v + s / n;",
    "s = max(v) - min(v); a = a + s;",
    "v = fliplr(v')';",
    "for i = 1:3\n  v(i) = v(i) + i;\nend",
]


@st.composite
def matlab_programs(draw):
    nprocs = draw(st.integers(min_value=1, max_value=4))
    n = draw(st.sampled_from([5, 8, 13]))
    stmts = draw(st.lists(st.sampled_from(_STMT_POOL),
                          min_size=1, max_size=5))
    src = "\n".join([f"n = {n};", "a = rand(n, n);", "v = rand(n, 1);"]
                    + stmts + ["total = sum(sum(a)) + sum(v);"])
    return nprocs, src


def _run_observables(result):
    spmd = result.spmd
    return result.output, _observables(spmd), {
        k: np.asarray(val).tolist() for k, val in result.workspace.items()}


@settings(max_examples=20, deadline=None)
@given(matlab_programs())
def test_compiled_programs_fused_equals_lockstep(program):
    """Fused execution of compiled MATLAB is bit-identical to lockstep:
    same workspace, same per-rank virtual clocks, same message/byte/
    collective accounting."""
    nprocs, src = program
    prog = compile_source(src)
    lockstep = prog.run(nprocs=nprocs, backend="lockstep")
    fused = prog.run(nprocs=nprocs, backend="fused")
    assert fused.spmd.backend == "fused"
    out_l, obs_l, ws_l = _run_observables(lockstep)
    out_f, obs_f, ws_f = _run_observables(fused)
    obs_l.pop("results"), obs_f.pop("results")
    assert out_l == out_f
    assert obs_l == obs_f
    assert ws_l == ws_f


# -- plan differential: any plan, every backend, same observables --------- #


@st.composite
def plans(draw):
    """A random (but always valid) optimization plan."""
    from repro.tuning import Plan

    scheme = draw(st.sampled_from(["block", "cyclic"]))
    dist_names = draw(st.sets(st.sampled_from(["a", "v", "s"]), max_size=3))
    dist = tuple(sorted(
        (name, draw(st.sampled_from(["block", "cyclic"])))
        for name in dist_names))
    fusion = tuple(draw(st.permutations(sorted(draw(st.sets(
        st.sampled_from(["transpose_matmul", "cse"]), max_size=2))))))
    return Plan(
        scheme=scheme,
        dist=dist,
        fusion=fusion,
        licm=draw(st.sampled_from(["off", "safe", "aggressive"])),
        guard=draw(st.sampled_from(["owner", "replicated"])),
        ew_split=draw(st.booleans()),
        gather_algo=draw(st.sampled_from(["ring", "doubling"])),
        allreduce_algo=draw(st.sampled_from(["tree", "halving"])),
        cache_gathers=draw(st.booleans()),
    )


@settings(max_examples=15, deadline=None)
@given(matlab_programs(), plans())
def test_any_plan_is_backend_invariant(program, plan):
    """The plan changes *what* the compiler and runtime decide — never
    the simulated machine's determinism: under any plan, lockstep,
    threads, and fused execution agree bit-for-bit on workspace values,
    program output, virtual clocks, and communication accounting."""
    nprocs, src = program
    prog = compile_source(src, plan=plan)
    runs = {backend: prog.run(nprocs=nprocs, backend=backend, plan=plan)
            for backend in ("lockstep", "threads", "fused")}
    out_ref, obs_ref, ws_ref = _run_observables(runs["lockstep"])
    obs_ref.pop("results")
    for backend in ("threads", "fused"):
        out, obs, ws = _run_observables(runs[backend])
        obs.pop("results")
        assert out == out_ref, backend
        assert obs == obs_ref, backend
        assert ws == ws_ref, backend


def test_backends_identical_on_mixed_fixed_program():
    """A dense hand-written program exercising every primitive at once
    (kept non-random so failures reproduce without hypothesis)."""
    def prog(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        local = np.full(8, float(comm.rank + 1))
        for step in range(3):
            local = np.asarray(
                comm.sendrecv(local, dest=right, source=left,
                              sendtag=step, recvtag=step))
            comm.compute(flops=50 * (comm.rank + 1), mem=local.size)
            total = comm.allreduce(float(local.sum()))
            local = local + comm.bcast(total, root=step % comm.size)
            request = comm.irecv(source=left, tag=100 + step)
            comm.send(float(local[0]), dest=right, tag=100 + step)
            while not request.test():
                pass
            local[0] = request.wait()
        parts = comm.allgather(float(local.sum()))
        comm.barrier()
        return comm.scan(sum(parts))

    lockstep = run_spmd(4, MEIKO_CS2, prog, backend="lockstep")
    threads = run_spmd(4, MEIKO_CS2, prog, backend="threads")
    assert _observables(lockstep) == _observables(threads)
    assert lockstep.collective_counts["allreduce"] == 3
    assert lockstep.collective_counts["scan"] == 1
