"""Datatype sizing and SPMD-executor behaviour tests."""

import numpy as np
import pytest

from repro.errors import MpiError
from repro.mpi.datatypes import DOUBLE, DOUBLE_COMPLEX, INT, sizeof
from repro.mpi.executor import run_spmd
from repro.mpi.machine import MEIKO_CS2


class TestSizeof:
    def test_arrays(self):
        assert sizeof(np.zeros(10)) == 80
        assert sizeof(np.zeros(10, dtype=np.float32)) == 40
        assert sizeof(np.zeros((3, 3), dtype=complex)) == 144

    def test_scalars(self):
        assert sizeof(1.5) == 8
        assert sizeof(3) == 8
        assert sizeof(1 + 2j) == 16

    def test_none_and_strings(self):
        assert sizeof(None) == 0
        assert sizeof("abcd") == 4

    def test_containers(self):
        assert sizeof([1.0, 2.0]) == 24  # 2 floats + header
        assert sizeof({"k": 1.0}) == 17  # key + value + header

    def test_numpy_scalars_sized_by_itemsize(self):
        """Regression: np.int64(3) is not an `int` instance and used to
        fall through to the 64-byte opaque guess."""
        assert sizeof(np.int64(3)) == 8
        assert sizeof(np.int32(3)) == 4
        assert sizeof(np.float32(1.5)) == 4
        assert sizeof(np.float64(1.5)) == 8  # float subclass, same answer
        assert sizeof(np.complex128(1 + 2j)) == 16
        assert sizeof(np.bool_(True)) == 1

    def test_array_pair_payload_is_shallow(self):
        """The packed alltoall payload shape: a flat (indices, values)
        tuple of arrays — sized from .nbytes, not element recursion."""
        idx = np.arange(100, dtype=np.int64)
        vals = np.ones(100)
        assert sizeof((idx, vals)) == idx.nbytes + vals.nbytes + 8

    def test_datatype_metadata(self):
        assert DOUBLE.size == 8 and INT.size == 4
        assert DOUBLE_COMPLEX.size == 16
        assert repr(DOUBLE) == "MPI.DOUBLE"


class TestExecutor:
    def test_single_rank_fast_path_no_threads(self):
        import threading

        before = threading.active_count()
        res = run_spmd(1, MEIKO_CS2, lambda c: c.rank)
        assert res.results == [0]
        assert threading.active_count() == before

    def test_results_ordered_by_rank(self):
        res = run_spmd(5, MEIKO_CS2, lambda c: c.rank * 10)
        assert res.results == [0, 10, 20, 30, 40]

    def test_elapsed_is_slowest_rank(self):
        def fn(comm):
            comm.compute(flops=int(1e6) * (comm.rank + 1))

        res = run_spmd(3, MEIKO_CS2, fn)
        assert res.elapsed == max(res.times)
        assert res.times[2] > res.times[0]

    def test_lowest_failing_rank_reported(self):
        def fn(comm):
            if comm.rank in (1, 3):
                raise ValueError(f"rank {comm.rank}")

        with pytest.raises(MpiError, match="rank 1"):
            run_spmd(4, MEIKO_CS2, fn)

    def test_zero_ranks_rejected(self):
        with pytest.raises(MpiError):
            run_spmd(0, MEIKO_CS2, lambda c: None)

    def test_kwargs_forwarded(self):
        def fn(comm, base, scale=1):
            return base * scale + comm.rank

        res = run_spmd(2, MEIKO_CS2, fn, 100, scale=2)
        assert res.results == [200, 201]
