"""Property-based tests (hypothesis) on the core invariants."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.frontend.lexer import tokenize
from repro.frontend.parser import parse_expression, parse_script
from repro.frontend.tokens import TokenKind
from repro.interp.interpreter import apply_binop, run_source
from repro.interp.values import (
    as_matrix,
    colon_range,
    index_assign,
    index_read,
    simplify,
)

# ---------------------------------------------------------------------- #
# strategies
# ---------------------------------------------------------------------- #

idents = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True).filter(
    lambda s: s not in {
        "if", "else", "elseif", "end", "for", "while", "break", "continue",
        "return", "function", "switch", "case", "otherwise", "global"})

small_floats = st.floats(min_value=-1e6, max_value=1e6,
                         allow_nan=False, allow_infinity=False)


@st.composite
def numeric_expressions(draw, depth=0):
    """Generate MATLAB scalar-expression source with its Python value."""
    if depth > 3 or draw(st.booleans()):
        value = draw(st.floats(min_value=-100, max_value=100,
                               allow_nan=False, allow_infinity=False,
                               width=32))
        return (repr(abs(float(value)))
                if value >= 0 else f"(-{abs(float(value))!r})",
                abs(float(value)) if value >= 0 else -abs(float(value)))
    op = draw(st.sampled_from(["+", "-", "*"]))
    left_src, left_val = draw(numeric_expressions(depth=depth + 1))
    right_src, right_val = draw(numeric_expressions(depth=depth + 1))
    value = {"+": left_val + right_val,
             "-": left_val - right_val,
             "*": left_val * right_val}[op]
    return f"({left_src} {op} {right_src})", value


# ---------------------------------------------------------------------- #
# lexer / parser
# ---------------------------------------------------------------------- #


@given(st.floats(min_value=0, max_value=1e12, allow_nan=False))
def test_lexer_number_roundtrip(x):
    toks = tokenize(repr(float(x)))
    assert toks[0].kind is TokenKind.NUMBER
    assert toks[0].value == pytest.approx(float(x))


@given(st.text(alphabet=st.characters(
    blacklist_characters="'\n", codec="ascii"), max_size=30))
def test_lexer_string_roundtrip(text):
    toks = tokenize(f"x = '{text}'")
    assert toks[2].kind is TokenKind.STRING
    assert toks[2].value == text


@given(idents)
def test_identifier_roundtrip(name):
    toks = tokenize(name)
    assert toks[0].kind is TokenKind.IDENT
    assert toks[0].text == name


@given(numeric_expressions())
@settings(max_examples=60)
def test_generated_expressions_parse_and_evaluate(pair):
    src, expected = pair
    expr = parse_expression(src)
    interp = run_source(f"x = {src};")
    assert interp.workspace["x"] == pytest.approx(expected, rel=1e-9)


@given(st.lists(st.lists(small_floats, min_size=1, max_size=4),
                min_size=1, max_size=4))
def test_matrix_literal_roundtrip(rows):
    assume(len({len(r) for r in rows}) == 1)
    src = "[" + "; ".join(", ".join(repr(v) if v >= 0 else f"(-{-v!r})"
                                    for v in row) for row in rows) + "]"
    interp = run_source(f"m = {src};")
    np.testing.assert_allclose(as_matrix(interp.workspace["m"]),
                               np.array(rows), rtol=1e-12)


# ---------------------------------------------------------------------- #
# value semantics
# ---------------------------------------------------------------------- #


@given(st.floats(-50, 50), st.floats(0.1, 7), st.floats(-50, 120))
def test_colon_range_matches_arange_semantics(start, step, stop):
    r = colon_range(start, step, stop).reshape(-1)
    if r.size:
        assert r[0] == pytest.approx(start)
        assert r[-1] <= stop + step * 1e-9
        if r.size > 1:
            np.testing.assert_allclose(np.diff(r), step, rtol=1e-9)
    else:
        assert start > stop


@given(st.integers(1, 8), st.integers(1, 8), st.integers(1, 100),
       small_floats)
def test_index_write_read_roundtrip(rows, cols, seed, value):
    rng = np.random.default_rng(seed)
    a = rng.random((rows, cols))
    i = int(rng.integers(1, rows + 1))
    j = int(rng.integers(1, cols + 1))
    updated = index_assign(a, [float(i), float(j)], value)
    assert index_read(updated, [float(i), float(j)]) == pytest.approx(
        value, rel=1e-12)


@given(st.integers(1, 6), st.integers(1, 6), st.integers(0, 10 ** 6))
def test_transpose_involution(rows, cols, seed):
    rng = np.random.default_rng(seed)
    a = rng.random((rows, cols))
    out = apply_binop("-", apply_binop("+", a, 0.0), 0.0)
    tt = as_matrix(simplify(as_matrix(out).T.copy())).T
    np.testing.assert_allclose(tt, a)


@given(st.integers(2, 7), st.integers(0, 10 ** 6))
def test_matmul_identity(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.random((n, n))
    out = apply_binop("*", a, np.eye(n))
    np.testing.assert_allclose(as_matrix(out), a)


@given(st.integers(1, 6), st.integers(0, 10 ** 6))
def test_solve_inverts_matmul(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.random((n, n)) + n * np.eye(n)
    x = rng.random((n, 1))
    b = apply_binop("*", a, x)
    x2 = apply_binop("\\", a, b)
    np.testing.assert_allclose(as_matrix(x2), x, rtol=1e-8)


# ---------------------------------------------------------------------- #
# SSA invariants on generated programs
# ---------------------------------------------------------------------- #


@st.composite
def straightline_programs(draw):
    names = draw(st.lists(idents, min_size=1, max_size=4, unique=True))
    lines = []
    defined = []
    for _ in range(draw(st.integers(1, 8))):
        target = draw(st.sampled_from(names))
        if defined and draw(st.booleans()):
            src_var = draw(st.sampled_from(defined))
            lines.append(f"{target} = {src_var} + 1;")
        else:
            lines.append(f"{target} = {draw(st.integers(0, 9))};")
        if target not in defined:
            defined.append(target)
    if draw(st.booleans()):
        cond_var = draw(st.sampled_from(defined))
        body_var = draw(st.sampled_from(names))
        lines.append(f"if {cond_var} > 2\n    {body_var} = 1;\nend")
    return "\n".join(lines)


@given(straightline_programs())
@settings(max_examples=50)
def test_ssa_single_assignment_invariant(src):
    from repro.analysis.resolve import resolve_program
    from repro.analysis.ssa import build_ssa

    prog = resolve_program(parse_script(src))
    ssa = build_ssa(prog.script.body)
    # every SSA value is defined at most once (entry values + phis + defs)
    defined = [v.vid for values in ssa.defs_of.values() for v in values]
    defined += [phi.result.vid for phi in ssa.all_phis()]
    assert len(defined) == len(set(defined))
    # every use refers to an existing value
    valid = {v.vid for v in ssa.values}
    for value in ssa.use_of.values():
        assert value.vid in valid


@given(straightline_programs())
@settings(max_examples=30)
def test_compiled_equals_interpreted_on_generated_programs(src):
    from repro.compiler import compile_source

    interp = run_source(src)
    result = compile_source(src).run(nprocs=2)
    for name, expected in interp.workspace.items():
        got = result.workspace[name]
        np.testing.assert_allclose(np.asarray(got, dtype=float),
                                   np.asarray(expected, dtype=float))


# ---------------------------------------------------------------------- #
# distributed-runtime properties
# ---------------------------------------------------------------------- #


@given(st.integers(1, 40), st.integers(1, 8), st.integers(0, 1000))
@settings(max_examples=25, deadline=None)
def test_distributed_sum_invariant(n, p, seed):
    from repro.mpi import MEIKO_CS2, run_spmd
    from repro.runtime.context import RuntimeContext

    def fn(comm):
        rt = RuntimeContext(comm, seed=seed)
        v = rt.rand(float(n), 1.0)
        return rt.call_builtin("sum", [v])

    res = run_spmd(p, MEIKO_CS2, fn)
    expected = np.random.default_rng(seed).random((n, 1)).sum()
    for r in res.results:
        assert r == pytest.approx(expected, rel=1e-10)


@given(st.integers(2, 30), st.integers(1, 6), st.integers(-40, 40))
@settings(max_examples=25, deadline=None)
def test_circshift_inverse_property(n, p, k):
    from repro.mpi import MEIKO_CS2, run_spmd
    from repro.runtime.context import RuntimeContext

    def fn(comm):
        rt = RuntimeContext(comm, seed=5)
        v = rt.rand(float(n), 1.0)
        w = rt.circshift(rt.circshift(v, float(k)), float(-k))
        return rt.to_interp_value(w)

    res = run_spmd(p, MEIKO_CS2, fn)
    expected = np.random.default_rng(5).random((n, 1))
    np.testing.assert_allclose(as_matrix(res.results[0]), expected)
