"""Backend-differential golden traces.

For two representative workloads (heat diffusion and conjugate
gradient) the per-source-line communication profile — and a SHA-256 of
the full canonical event stream — is pinned to committed golden files.
The same bytes must come out of every backend (``lockstep``,
``threads``, ``fused``) and out of repeated runs: the trace layer rides
on the repo's standing invariant that all backends produce bit-identical
virtual clocks and communication accounting.

Regenerate after an intentional model change with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest \\
        tests/trace/test_golden_traces.py
"""

import hashlib
import os

import pytest

from repro.bench.workloads import conjugate_gradient, image_filter
from repro.compiler import compile_source
from repro.mpi import MEIKO_CS2
from repro.native import get_engine
from repro.trace import canonical_events, render_source_profile

BACKENDS = ("lockstep", "threads", "fused")
NPROCS = 4
GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

HEAT_SRC = """\
n = 64;
u = zeros(n, 1);
u(1) = 1.0;
alpha = 0.1;
for step = 1:8
  left = circshift(u, 1);
  right = circshift(u, -1);
  u = u + alpha * (left - 2 * u + right);
  total = sum(u);
end
disp(total);
"""

PROGRAMS = {
    "heat_diffusion": HEAT_SRC,
    "cg": conjugate_gradient(n=64, iters=8).source,
    "image_filter": image_filter(n=32, steps=2).source,
}


def _trace_text(key: str, source: str, backend: str,
                native: str = None) -> str:
    program = compile_source(source, name=key)
    result = program.run(nprocs=NPROCS, machine=MEIKO_CS2,
                         backend=backend, trace=True, native=native)
    profile = render_source_profile(result.trace.line_profile(), source,
                                    filename=key, elapsed=result.elapsed)
    digest = hashlib.sha256(
        canonical_events(result.trace).encode("utf-8")).hexdigest()
    return f"{profile}\ncanonical-sha256: {digest}\n"


def _golden_path(key: str) -> str:
    return os.path.join(GOLDEN_DIR, f"{key}_p{NPROCS}.profile")


@pytest.mark.parametrize("key", sorted(PROGRAMS))
def test_golden_trace_all_backends(key):
    source = PROGRAMS[key]
    texts = {backend: _trace_text(key, source, backend)
             for backend in BACKENDS}
    assert texts["lockstep"] == texts["threads"], \
        "threads backend diverged from lockstep trace"
    assert texts["lockstep"] == texts["fused"], \
        "fused backend diverged from lockstep trace"
    path = _golden_path(key)
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(texts["lockstep"])
        pytest.skip(f"regenerated {path}")
    with open(path, "r", encoding="utf-8") as fh:
        golden = fh.read()
    assert texts["lockstep"] == golden, (
        f"trace for {key} drifted from {path}; if the cost model or "
        f"trace schema changed intentionally, regenerate with "
        f"REPRO_UPDATE_GOLDEN=1")


@pytest.mark.parametrize("key", sorted(PROGRAMS))
def test_golden_trace_stable_across_runs(key):
    source = PROGRAMS[key]
    first = _trace_text(key, source, "lockstep")
    second = _trace_text(key, source, "lockstep")
    assert first == second


@pytest.mark.skipif(not get_engine().available,
                    reason="no C compiler / cffi: native tier unavailable")
def test_golden_trace_native_invariant():
    """The native kernel tier changes host time only: canonical event
    bytes (virtual clock, messages, bytes) must be identical with the
    tier forced off and forced on."""
    source = PROGRAMS["image_filter"]
    off = _trace_text("image_filter", source, "fused", native="off")
    on = _trace_text("image_filter", source, "fused", native="require")
    assert off == on, "native tier leaked into the canonical trace"
