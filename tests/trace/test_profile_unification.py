"""Interpreter ``--profile`` and compiled ``--trace-summary`` share one
report schema (``repro.trace.profile``): same header, same columns, same
annotated-source layout — so a user can diff where the interpreter and
the compiled SPMD program spend their modeled time, line by line.
"""

from repro.analysis.resolve import resolve_program
from repro.compiler import compile_source
from repro.frontend.parser import parse_script
from repro.interp import CostMeter, Interpreter, LineProfiler
from repro.mpi.machine import MEIKO_CS2
from repro.trace.profile import HEADER, RULE, render_source_profile

SRC = """\
n = 32;
v = zeros(n, 1);
v(1) = 1.0;
for i = 1:4
  v = circshift(v, 1);
  s = sum(v);
end
disp(s);
"""


def _interp_report():
    program = resolve_program(parse_script(SRC, "unify"))
    profiler = LineProfiler()
    meter = CostMeter(MEIKO_CS2.cpu.interpreter_params())
    Interpreter(program, meter=meter, profiler=profiler).run()
    return profiler.report(SRC, filename="unify")


def _compiled_report():
    program = compile_source(SRC, name="unify")
    result = program.run(nprocs=4, machine=MEIKO_CS2, trace=True)
    return render_source_profile(result.trace.line_profile(), SRC,
                                 filename="unify", elapsed=result.elapsed)


def test_same_header_and_layout():
    interp, compiled = _interp_report(), _compiled_report()
    assert interp.splitlines()[0] == HEADER
    assert compiled.splitlines()[0] == HEADER
    assert interp.splitlines()[1] == RULE == compiled.splitlines()[1]


def test_same_annotated_line_count():
    interp, compiled = _interp_report(), _compiled_report()
    n_source = len(SRC.splitlines())
    for report in (interp, compiled):
        lines = report.splitlines()
        # header + rule + one row per source line, at minimum
        assert len(lines) >= 2 + n_source
        for lineno, text in enumerate(SRC.splitlines(), start=1):
            assert text in lines[1 + lineno]  # same row, same order


def test_hot_line_agrees():
    """Both tools finger the same statement as a major cost center."""
    def hot_lines(report):
        hot = set()
        for row in report.splitlines()[2:]:
            if "%" not in row:
                continue
            pct = row.split("%")[0].rsplit(None, 1)[-1]
            try:
                if float(pct) > 20.0:
                    hot.add(row.split()[0])
            except ValueError:
                continue
        return hot

    interp_hot = hot_lines(_interp_report())
    compiled_hot = hot_lines(_compiled_report())
    assert interp_hot & compiled_hot, (interp_hot, compiled_hot)


def test_compiled_report_shows_communication_columns():
    compiled = _compiled_report()
    assert "msgs" in compiled and "colls" in compiled
    # the circshift statement moves messages under SPMD execution
    circ_row = next(row for row in compiled.splitlines()
                    if "circshift" in row)
    msgs = int(circ_row.split()[2])
    assert msgs > 0
