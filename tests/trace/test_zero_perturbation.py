"""Tracing must not perturb the run it observes.

Property: for randomized SPMD programs, running with ``trace=True``
yields *bit-identical* observables (results, per-rank virtual clocks,
message/byte counts, collective tallies) to the untraced run — on every
backend.  Recorders only read virtual state, so any divergence is a
bug in a hook, not measurement noise.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.compiler import compile_source
from repro.mpi import MEIKO_CS2, run_spmd

BACKENDS = ("lockstep", "threads", "fused")


@st.composite
def spmd_programs(draw):
    """(nprocs, ops): a random straight-line SPMD program."""
    nprocs = draw(st.integers(min_value=2, max_value=4))
    n_ops = draw(st.integers(min_value=1, max_value=8))
    ops = []
    for _ in range(n_ops):
        kind = draw(st.sampled_from(
            ["compute", "ring", "p2p", "allreduce", "bcast", "barrier",
             "allgather", "scan"]))
        if kind == "compute":
            ops.append(("compute", draw(st.integers(1, 2000))))
        elif kind == "ring":
            ops.append(("ring", draw(st.integers(0, 3))))
        elif kind == "p2p":
            src = draw(st.integers(0, nprocs - 1))
            dst = (src + 1 + draw(st.integers(0, nprocs - 2))) % nprocs
            ops.append(("p2p", src, dst, draw(st.integers(0, 3))))
        elif kind == "bcast":
            ops.append(("bcast", draw(st.integers(0, nprocs - 1))))
        else:
            ops.append((kind,))
    return nprocs, ops


def _make_program(ops):
    def prog(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        acc = float(comm.rank + 1)
        for line, op in enumerate(ops, start=1):
            comm.line = line      # what the emitted markers do
            kind = op[0]
            if kind == "compute":
                comm.compute(flops=op[1] * (comm.rank + 1))
            elif kind == "ring":
                acc = float(comm.sendrecv(np.full(3, acc), dest=right,
                                          sendtag=op[1], source=left,
                                          recvtag=op[1]).sum())
            elif kind == "p2p":
                _, src, dst, tag = op
                if comm.rank == src:
                    comm.send(acc, dest=dst, tag=tag)
                elif comm.rank == dst:
                    acc += float(comm.recv(source=src, tag=tag))
            elif kind == "allreduce":
                acc = float(comm.allreduce(acc))
            elif kind == "bcast":
                acc = float(comm.bcast(acc, root=op[1]))
            elif kind == "barrier":
                comm.barrier()
            elif kind == "allgather":
                acc = float(sum(comm.allgather(acc)))
            elif kind == "scan":
                acc = float(comm.scan(acc))
        return acc
    return prog


def _observables(result):
    return {
        "results": result.results,
        "times": result.times,
        "messages_sent": result.messages_sent,
        "bytes_sent": result.bytes_sent,
        "collectives": result.collectives,
        "collective_counts": result.collective_counts,
        "backend": result.backend,
        "fault_events": result.fault_events,
    }


@settings(max_examples=20, deadline=None)
@given(spmd_programs())
def test_tracing_is_zero_perturbation(program):
    nprocs, ops = program
    prog = _make_program(ops)
    for backend in BACKENDS:
        plain = run_spmd(nprocs, MEIKO_CS2, prog, backend=backend)
        traced = run_spmd(nprocs, MEIKO_CS2, prog, backend=backend,
                          trace=True)
        assert plain.trace is None and traced.trace is not None
        assert _observables(plain) == _observables(traced), backend


@settings(max_examples=8, deadline=None)
@given(st.sampled_from([5, 8, 13]), st.integers(1, 4))
def test_compiled_tracing_is_zero_perturbation(n, nprocs):
    src = (f"n = {n};\n"
           "a = rand(n, n);\n"
           "v = rand(n, 1);\n"
           "v = a * v;\n"
           "v = circshift(v, 1);\n"
           "s = sum(v);\n"
           "disp(s);\n")
    for backend in BACKENDS:
        program = compile_source(src)
        plain = program.run(nprocs=nprocs, machine=MEIKO_CS2,
                            backend=backend)
        traced = program.run(nprocs=nprocs, machine=MEIKO_CS2,
                             backend=backend, trace=True)
        assert plain.output == traced.output
        assert plain.elapsed == traced.elapsed
        plain_obs = _observables(plain.spmd)
        traced_obs = _observables(traced.spmd)
        # workspaces (in `results`) hold arrays; compared separately below
        plain_obs.pop("results")
        traced_obs.pop("results")
        assert plain_obs == traced_obs
        assert plain.workspace.keys() == traced.workspace.keys()
        for key in plain.workspace:
            np.testing.assert_array_equal(
                np.asarray(plain.workspace[key]),
                np.asarray(traced.workspace[key]))
