"""Trace-layer invariants.

The recorder hooks mirror every virtual-clock/counter mutation in the
MPI substrate, so the trace is *redundant* with the world's accounting —
and these tests pin the redundancy down: per-line virtual time sums to
each rank's final clock, profile totals match the world counters, and
the canonical serialization is bit-stable across runs and backends.
"""

import numpy as np
import pytest

from repro.compiler import compile_source
from repro.mpi import MEIKO_CS2, run_spmd
from repro.mpi.executor import TRACE_ENV_VAR, resolve_trace
from repro.trace import canonical_events, chrome_trace

BACKENDS = ("lockstep", "threads", "fused")


def _mixed_program(comm):
    """Touches every traced op kind that is fusion-compatible."""
    comm.line = 2
    comm.compute(flops=500, elems=32)
    comm.overhead(3)
    comm.line = 3
    acc = comm.allreduce(1.5)
    comm.line = 4
    acc += comm.bcast(2.0, root=0)
    comm.line = 5
    parts = comm.allgather(np.ones(4))
    comm.barrier()
    return acc + float(sum(p.sum() for p in parts))


def _rank_dependent_program(comm):
    """Adds point-to-point, rooted collectives, scan (lockstep/threads)."""
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    comm.line = 2
    comm.compute(flops=100 * (comm.rank + 1))
    comm.line = 3
    got = comm.sendrecv(np.full(3, float(comm.rank)), dest=right,
                        source=left)
    comm.line = 4
    total = comm.allreduce(float(np.sum(got)))
    comm.line = 5
    ranks = comm.gather(comm.rank, root=0)
    comm.line = 6
    prefix = comm.scan(1.0)
    comm.line = 7
    share = comm.scatter(list(range(comm.size)) if comm.rank == 0
                         else None, root=0)
    rows = comm.alltoall([float(comm.rank)] * comm.size)
    return total + prefix + share + sum(rows) + (ranks[0] if ranks else 0)


@pytest.mark.parametrize("backend", BACKENDS)
def test_vtime_sums_to_final_clock(backend):
    result = run_spmd(4, MEIKO_CS2, _mixed_program, backend=backend,
                      trace=True)
    for rank, rec in enumerate(result.trace.recorders):
        assert rec.vtime_total == pytest.approx(result.times[rank],
                                                rel=1e-12, abs=1e-18)


@pytest.mark.parametrize("backend", ("lockstep", "threads"))
def test_profile_totals_match_world_counters(backend):
    result = run_spmd(3, MEIKO_CS2, _rank_dependent_program,
                      backend=backend, trace=True)
    profile = result.trace.line_profile()
    assert sum(r.msgs for r in profile.values()) == result.messages_sent
    assert sum(r.bytes for r in profile.values()) == result.bytes_sent
    assert sum(r.colls for r in profile.values()) == result.collectives
    # vtime: per-line max over ranks never exceeds elapsed, and the
    # per-rank sums reproduce each clock exactly
    for rank, rec in enumerate(result.trace.recorders):
        assert rec.vtime_total == pytest.approx(result.times[rank],
                                                rel=1e-12, abs=1e-18)


def test_canonical_trace_identical_across_all_backends():
    texts = {backend: canonical_events(
        run_spmd(4, MEIKO_CS2, _mixed_program, backend=backend,
                 trace=True).trace) for backend in BACKENDS}
    assert texts["lockstep"] == texts["threads"] == texts["fused"]
    assert "allreduce" in texts["lockstep"]
    assert "mpi.send" not in texts["lockstep"]  # no p2p in this program


def test_canonical_trace_stable_across_runs():
    runs = [canonical_events(
        run_spmd(3, MEIKO_CS2, _rank_dependent_program,
                 backend="lockstep", trace=True).trace)
        for _ in range(3)]
    assert runs[0] == runs[1] == runs[2]
    assert "mpi.send" in runs[0] and "mpi.recv" in runs[0]
    assert "scatter" in runs[0] and "alltoall" in runs[0]


def test_rank_dependent_trace_identical_lockstep_vs_threads():
    texts = [canonical_events(
        run_spmd(3, MEIKO_CS2, _rank_dependent_program, backend=backend,
                 trace=True).trace) for backend in ("lockstep", "threads")]
    assert texts[0] == texts[1]


def test_trace_off_by_default():
    result = run_spmd(2, MEIKO_CS2, _mixed_program)
    assert result.trace is None


def test_resolve_trace_env(monkeypatch):
    monkeypatch.delenv(TRACE_ENV_VAR, raising=False)
    assert resolve_trace() is False
    assert resolve_trace(True) is True
    monkeypatch.setenv(TRACE_ENV_VAR, "1")
    assert resolve_trace() is True
    assert resolve_trace(False) is False  # explicit argument wins
    monkeypatch.setenv(TRACE_ENV_VAR, "0")
    assert resolve_trace() is False
    monkeypatch.setenv(TRACE_ENV_VAR, "summary")
    assert resolve_trace() is True


def test_trace_env_enables_recording(monkeypatch):
    monkeypatch.setenv(TRACE_ENV_VAR, "summary")
    result = run_spmd(2, MEIKO_CS2, _mixed_program)
    assert result.trace is not None
    assert result.trace.meta["backend"] in BACKENDS


def test_suspension_hides_instrumentation(monkeypatch):
    def prog(comm):
        comm.line = 2
        comm.compute(flops=100)
        token = comm.trace_suspend()
        comm.allreduce(1.0)       # "instrumentation" work
        comm.trace_resume(token)
        comm.line = 3
        comm.barrier()
        return 0.0

    result = run_spmd(2, MEIKO_CS2, prog, backend="lockstep", trace=True)
    text = canonical_events(result.trace)
    assert "allreduce" not in text
    assert "barrier" in text
    # the suspended collective still counted in world accounting
    assert result.collective_counts.get("allreduce") == 1


def test_fault_events_flow_into_trace():
    def prog(comm):
        comm.line = 2
        if comm.rank == 0:
            comm.send(np.ones(4), dest=1, tag=7)
            comm.send(np.ones(4), dest=1, tag=7)
        elif comm.rank == 1:
            comm.recv(source=0, tag=7)
        comm.barrier()
        return None

    plan = "seed=3; drop rank=0 dst=1 tag=7 count=1 step=1"
    result = run_spmd(2, MEIKO_CS2, prog, backend="lockstep",
                      fault_plan=plan, trace=True)
    faults = result.trace.fault_events()
    assert len(faults) == 1
    assert faults[0].args["what"].startswith("drop rank 0->rank 1")
    # the stderr-style event list and the trace agree
    assert result.fault_events == [faults[0].args["what"]]


def test_chrome_trace_schema():
    result = run_spmd(2, MEIKO_CS2, _mixed_program, backend="lockstep",
                      trace=True)
    doc = chrome_trace(result.trace, pass_timings=[("parse", 0.001)])
    events = doc["traceEvents"]
    assert doc["otterMeta"]["backend"] == "lockstep"
    assert any(e.get("ph") == "M" for e in events)          # metadata
    spans = [e for e in events if e.get("ph") == "X" and e["pid"] == 1]
    assert spans and all(e["ts"] >= 0 and e["dur"] >= 0 for e in spans)
    assert any(e["pid"] == 2 and e["name"] == "parse" for e in events)


def test_compiled_run_result_exposes_trace():
    program = compile_source("x = ones(8, 1); s = sum(x); disp(s);")
    result = program.run(nprocs=2, machine=MEIKO_CS2, trace=True)
    assert result.trace is result.spmd.trace is not None
    text = canonical_events(result.trace)
    assert "io.write" in text
    assert program.pass_timings and program.pass_timings[0][0] == "parse"


def test_zero_cost_attribute_when_disabled():
    """The disabled path must not even allocate recorders."""
    result = run_spmd(2, MEIKO_CS2, _mixed_program, backend="lockstep",
                      trace=False)
    assert result.trace is None
