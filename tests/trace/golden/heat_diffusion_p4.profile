  line    calls    msgs        bytes  colls   time(ms)      %  source
------------------------------------------------------------------------------
     1                                                         n = 64;
     2        1       0            0      0      0.004   0.1%  u = zeros(n, 1);
     3        1       0            0      0      0.004   0.1%  u(1) = 1.0;
     4                                                         alpha = 0.1;
     5                                                         for step = 1:8
     6        8      32          256      0      0.676  16.8%    left = circshift(u, 1);
     7        8      32          256      0      0.676  16.8%    right = circshift(u, -1);
     8        8       0            0      0      0.056   1.4%    u = u + alpha * (left - 2 * u + right);
     9        8       0            0      8      2.602  64.8%    total = sum(u);
    10                                                         end
    11                                                         disp(total);
------------------------------------------------------------------------------
 total       34      64          512      8      4.017 100.0%  
elapsed: 0.004017376969696971 virtual seconds
canonical-sha256: a3b4b6a09032c79bae43686236b69a87ef83764a3c144d4d0bf778b0892bc139
