  line    calls    msgs        bytes  colls   time(ms)      %  source
------------------------------------------------------------------------------
     1                                                         % Conjugate gradient solver for a positive definite system (n = 64).
     2                                                         n = 64;
     3                                                         iters = 8;
     4                                                         rand('seed', 17);
     5        3       0            0      0      0.136   1.5%  A = rand(n, n) + n * eye(n);      % strictly diagonally dominant
     6        1       0            0      0      0.004   0.0%  xtrue = ones(n, 1);
     7        2       0            0      1      0.288   3.2%  b = A * xtrue;
     8        1       0            0      0      0.004   0.0%  x = zeros(n, 1);
     9        3       0            0      1      0.293   3.3%  r = b - A * x;
    10                                                         p = r;
    11        1       0            0      1      0.325   3.6%  rsold = r' * r;
    12                                                         for i = 1:iters
    13       16       0            0      8      2.307  25.6%      Ap = A * p;
    14        8       0            0      8      2.602  28.8%      alpha = rsold / (p' * Ap);
    15        8       0            0      0      0.043   0.5%      x = x + alpha * p;
    16        8       0            0      0      0.043   0.5%      r = r - alpha * Ap;
    17        8       0            0      8      2.602  28.8%      rsnew = r' * r;
    18        8       0            0      0      0.043   0.5%      p = r + (rsnew / rsold) * p;
    19                                                             rsold = rsnew;
    20                                                         end
    21                                                         resid = sqrt(rsold);
    22        2       0            0      1      0.331   3.7%  err = max(abs(x - xtrue));
    23                                                         fprintf('cg: n=%d resid=%.3e err=%.3e\n', n, resid, err);
------------------------------------------------------------------------------
 total       69       0            0     28      9.021 100.0%  
elapsed: 0.009020602517482514 virtual seconds
canonical-sha256: 034c0ab9b764dd98bde124ea43b506dfb72059f85022b39d96cdcb365e6f13f3
