  line    calls    msgs        bytes  colls   time(ms)      %  source
------------------------------------------------------------------------------
     1                                                         % Image filtering (the MatlabMPI benchmark family): cross-stencil blur,
     2                                                         % unsharp mask, and gradient-magnitude edge blend over an n x n image.
     3                                                         n = 32;
     4                                                         steps = 2;
     5                                                         rand('seed', 42);
     6        1       0            0      0      0.009   0.2%  img = rand(n, n);
     7                                                         tau = 0.08;
     8        0       0            0      0      0.000   0.0%  sh_n = [-1, 0]; sh_s = [1, 0]; sh_w = [0, -1]; sh_e = [0, 1];
     9                                                         for s = 1:steps
    10        4       0            0      4      1.297  26.2%      north = circshift(img, sh_n);
    11        4       0            0      4      1.297  26.2%      south = circshift(img, sh_s);
    12        4       0            0      2      0.506  10.2%      west = circshift(img, sh_w);
    13        4       0            0      2      0.506  10.2%      east = circshift(img, sh_e);
    14        2       0            0      0      0.120   2.4%      blur = (north + south + west + east) ./ 8 + img ./ 2;
    15        2       0            0      0      0.069   1.4%      sharp = img + 1.5 .* (img - blur);
    16        2       0            0      0      0.086   1.7%      tone = blur .* blur .* (3 - 2 .* blur);
    17        2       0            0      0      0.051   1.0%      gv = (south - north) ./ 2;
    18        2       0            0      0      0.051   1.0%      gh = (east - west) ./ 2;
    19        2       0            0      0      0.086   1.7%      mag = sqrt(gv .* gv + gh .* gh);
    20        2       0            0      0      0.034   0.7%      edges = mag > tau;
    21        2       0            0      0      0.086   1.7%      out = edges .* sharp + (1 - edges) .* tone;
    22        4       0            0      0      0.069   1.4%      img = max(min(out, 1), 0);
    23                                                         end
    24        2       0            0      2      0.680  13.7%  total = sum(sum(img));
    25                                                         fprintf('imgfilter: n=%d steps=%d checksum=%.9f\n', n, steps, total);
------------------------------------------------------------------------------
 total       39       0            0     14      4.947 100.0%  
elapsed: 0.00494701939393939 virtual seconds
canonical-sha256: ee7b41ad495971e9d0ace86bfc54e9165253f69b6a7bff24877d0ea4f6d15541
