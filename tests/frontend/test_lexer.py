"""Scanner unit tests."""

import pytest

from repro.errors import LexError
from repro.frontend.lexer import tokenize
from repro.frontend.tokens import TokenKind as T


def kinds(src):
    return [t.kind for t in tokenize(src)][:-1]  # drop EOF


def test_empty_input():
    toks = tokenize("")
    assert len(toks) == 1 and toks[0].kind is T.EOF


def test_simple_assignment():
    assert kinds("x = 3") == [T.IDENT, T.ASSIGN, T.NUMBER]


def test_integer_and_float_literals():
    toks = tokenize("3 3.5 .5 3. 1e3 2.5e-2 7E+2")
    values = [t.value for t in toks if t.kind is T.NUMBER]
    assert values == [3.0, 3.5, 0.5, 3.0, 1000.0, 0.025, 700.0]


def test_imaginary_literals():
    toks = tokenize("3i 2.5j 1e2i")
    assert all(t.kind is T.IMAG_NUMBER for t in toks[:-1])
    assert [t.value for t in toks[:-1]] == [3.0, 2.5, 100.0]


def test_ident_starting_with_i_is_not_imaginary():
    toks = tokenize("3in")  # `3` then ident `in`... lexed as NUMBER, IDENT
    assert toks[0].kind is T.NUMBER
    assert toks[1].kind is T.IDENT and toks[1].text == "in"


def test_malformed_exponent_raises():
    with pytest.raises(LexError):
        tokenize("1e+")


def test_keywords_recognized():
    assert kinds("if else elseif end for while break continue return") == [
        T.IF, T.ELSE, T.ELSEIF, T.END, T.FOR, T.WHILE, T.BREAK,
        T.CONTINUE, T.RETURN]


def test_function_keyword_and_switch():
    assert kinds("function switch case otherwise global") == [
        T.FUNCTION, T.SWITCH, T.CASE, T.OTHERWISE, T.GLOBAL]


def test_keyword_prefix_is_ident():
    toks = tokenize("iffy, ending")
    assert toks[0].kind is T.IDENT and toks[0].text == "iffy"
    assert toks[2].kind is T.IDENT and toks[2].text == "ending"


def test_two_char_operators():
    assert kinds("== ~= <= >= && || .* ./ .^ .'") == [
        T.EQ, T.NE, T.LE, T.GE, T.ANDAND, T.OROR,
        T.DOTSTAR, T.DOTSLASH, T.DOTCARET, T.DOTTRANSPOSE]


def test_dot_backslash():
    assert kinds("a .\\ b") == [T.IDENT, T.DOTBACKSLASH, T.IDENT]


def test_one_char_operators():
    assert kinds("+ - * / \\ ^ < > & | ~ : ; , @") == [
        T.PLUS, T.MINUS, T.STAR, T.SLASH, T.BACKSLASH, T.CARET,
        T.LT, T.GT, T.AND, T.OR, T.NOT, T.COLON, T.SEMI, T.COMMA, T.AT]


class TestQuoteDisambiguation:
    def test_string_after_assign(self):
        toks = tokenize("x = 'hello'")
        assert toks[2].kind is T.STRING and toks[2].value == "hello"

    def test_transpose_after_ident(self):
        assert kinds("x'") == [T.IDENT, T.TRANSPOSE]

    def test_transpose_after_rparen(self):
        assert kinds("(x)'") == [T.LPAREN, T.IDENT, T.RPAREN, T.TRANSPOSE]

    def test_transpose_after_rbracket(self):
        assert kinds("[1]'") == [T.LBRACKET, T.NUMBER, T.RBRACKET,
                                 T.TRANSPOSE]

    def test_transpose_after_number(self):
        assert kinds("3'") == [T.NUMBER, T.TRANSPOSE]

    def test_double_transpose(self):
        assert kinds("x''") == [T.IDENT, T.TRANSPOSE, T.TRANSPOSE]

    def test_string_after_comma(self):
        toks = tokenize("f(x, 'mode')")
        assert toks[4].kind is T.STRING

    def test_string_escaped_quote(self):
        toks = tokenize("x = 'it''s'")
        assert toks[2].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize("x = 'oops")

    def test_string_not_across_newline(self):
        with pytest.raises(LexError):
            tokenize("x = 'one\ntwo'")


class TestCommentsAndContinuation:
    def test_comment_to_eol(self):
        assert kinds("x = 1 % comment here\ny = 2") == [
            T.IDENT, T.ASSIGN, T.NUMBER, T.NEWLINE,
            T.IDENT, T.ASSIGN, T.NUMBER]

    def test_comment_only_line(self):
        assert kinds("% nothing\n") == [T.NEWLINE]

    def test_continuation_swallows_newline(self):
        assert kinds("x = 1 + ...\n    2") == [
            T.IDENT, T.ASSIGN, T.NUMBER, T.PLUS, T.NUMBER]

    def test_continuation_with_trailing_comment(self):
        assert kinds("x = 1 + ... this is ignored\n 2") == [
            T.IDENT, T.ASSIGN, T.NUMBER, T.PLUS, T.NUMBER]

    def test_percent_inside_string_is_text(self):
        toks = tokenize("fprintf('100%%')")
        assert toks[2].kind is T.STRING and toks[2].value == "100%%"


class TestNumbersVsOperators:
    def test_number_dot_star_is_op(self):
        # `2.*x` is 2 .* x, not 2. * x ambiguity — both parse the same
        assert kinds("2.*x") == [T.NUMBER, T.DOTSTAR, T.IDENT]

    def test_number_dot_caret(self):
        assert kinds("2.^x") == [T.NUMBER, T.DOTCARET, T.IDENT]

    def test_range_of_numbers(self):
        assert kinds("1:10") == [T.NUMBER, T.COLON, T.NUMBER]


def test_locations_track_lines_and_columns():
    toks = tokenize("x = 1\ny = 2")
    assert toks[0].loc.line == 1 and toks[0].loc.col == 1
    y = [t for t in toks if t.text == "y"][0]
    assert y.loc.line == 2 and y.loc.col == 1


def test_unexpected_character():
    with pytest.raises(LexError):
        tokenize("x = $")
