"""M-file provider tests (dict, directory, chain)."""

import numpy as np
import pytest

from repro.frontend.mfile import (
    ChainProvider,
    DictProvider,
    DirectoryProvider,
)


class TestDictProvider:
    def test_lookup_parses_and_caches(self):
        p = DictProvider({"f": "function y = f(x)\ny = x;"})
        first = p.lookup("f")
        assert first is not None and first[0].name == "f"
        assert p.lookup("f") is first  # cached

    def test_missing_returns_none(self):
        assert DictProvider({}).lookup("nope") is None

    def test_data_files(self):
        data = np.ones((2, 2))
        p = DictProvider({}, {"d.dat": data})
        assert p.load_data_file("d.dat") is data
        assert p.load_data_file("other") is None


class TestDirectoryProvider:
    def test_finds_m_file(self, tmp_path):
        (tmp_path / "g.m").write_text("function y = g(x)\ny = x + 1;\n")
        p = DirectoryProvider([str(tmp_path)])
        funcs = p.lookup("g")
        assert funcs is not None and funcs[0].name == "g"

    def test_first_directory_wins(self, tmp_path):
        d1 = tmp_path / "a"
        d2 = tmp_path / "b"
        d1.mkdir(), d2.mkdir()
        (d1 / "f.m").write_text("function y = f\ny = 1;\n")
        (d2 / "f.m").write_text("function y = f\ny = 2;\n")
        p = DirectoryProvider([str(d1), str(d2)])
        funcs = p.lookup("f")
        # the body from d1: y = 1
        from repro.frontend import ast_nodes as A

        assign = funcs[0].body[0]
        assert isinstance(assign, A.Assign)
        assert assign.value.value == 1.0

    def test_missing_cached_as_none(self, tmp_path):
        p = DirectoryProvider([str(tmp_path)])
        assert p.lookup("absent") is None
        assert p.lookup("absent") is None

    def test_loads_data_file(self, tmp_path):
        np.savetxt(tmp_path / "grid.dat", np.arange(6.0).reshape(2, 3))
        p = DirectoryProvider([str(tmp_path)])
        data = p.load_data_file("grid")
        np.testing.assert_array_equal(data, np.arange(6.0).reshape(2, 3))
        data2 = p.load_data_file("grid.dat")
        np.testing.assert_array_equal(data2, data)

    def test_end_to_end_compile_from_directory(self, tmp_path):
        from repro.compiler import OtterCompiler

        (tmp_path / "tw.m").write_text("function y = tw(x)\ny = 2 * x;\n")
        compiler = OtterCompiler(provider=DirectoryProvider([str(tmp_path)]))
        result = compiler.compile("z = tw(10) + tw(11);").run(nprocs=2)
        assert result.workspace["z"] == 42.0


class TestChainProvider:
    def test_first_hit_wins(self):
        p1 = DictProvider({"f": "function y = f\ny = 1;"})
        p2 = DictProvider({"f": "function y = f\ny = 2;",
                           "g": "function y = g\ny = 3;"})
        chain = ChainProvider([p1, p2])
        assert chain.lookup("f")[0].body[0].value.value == 1.0
        assert chain.lookup("g") is not None
        assert chain.lookup("h") is None

    def test_data_file_chain(self):
        chain = ChainProvider([
            DictProvider({}, {}),
            DictProvider({}, {"d": np.zeros(3)}),
        ])
        assert chain.load_data_file("d") is not None
        assert chain.load_data_file("x") is None
