"""Unparser round-trip tests: parse(unparse(parse(src))) == parse(src)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.frontend import ast_nodes as A
from repro.frontend.parser import (
    parse_expression,
    parse_function_file,
    parse_script,
)
from repro.frontend.unparse import unparse, unparse_expr, unparse_script


def ast_equal(a, b) -> bool:
    """Structural AST equality (locations excluded by the dataclasses)."""
    if type(a) is not type(b):
        return False
    if isinstance(a, A.Node):
        fields = [f for f in a.__dataclass_fields__ if f != "loc"]
        return all(ast_equal(getattr(a, f), getattr(b, f)) for f in fields)
    if isinstance(a, (list, tuple)):
        return (len(a) == len(b)
                and all(ast_equal(x, y) for x, y in zip(a, b)))
    if isinstance(a, dict):
        return (a.keys() == b.keys()
                and all(ast_equal(a[k], b[k]) for k in a))
    return a == b


def roundtrip_expr(src):
    first = parse_expression(src)
    text = unparse_expr(first)
    second = parse_expression(text)
    assert ast_equal(first, second), f"{src!r} -> {text!r}"
    return text


def roundtrip_script(src):
    first = parse_script(src)
    text = unparse_script(first)
    second = parse_script(text)
    assert ast_equal(first, second), f"round-trip failed:\n{text}"
    return text


EXPRESSIONS = [
    "1 + 2 * 3",
    "-2^2",
    "2^-1",
    "(1 + 2) * 3",
    "a' * a",
    "a.' + b'",
    "x(2:end, :)",
    "f(g(h(1)), 2)",
    "[1, 2; 3, 4]",
    "[a + 1, b'; c(2), 4]",
    "1:10",
    "0:0.5:10",
    "1:n+1",
    "a & b | c",
    "x && y || z",
    "~(a == b)",
    "a ./ b .* c .^ 2",
    "a \\ b",
    "a .\\ b",
    "3i + 2",
    "'it''s'",
    "m(end-1, end)",
    "-x'",
    "a(:)",
]


@pytest.mark.parametrize("src", EXPRESSIONS)
def test_expression_roundtrip(src):
    roundtrip_expr(src)


SCRIPTS = [
    "x = 1;\ny = x + 2\n",
    "a(2, 3) = 7;\nb = a(1, :);",
    "[r, c] = size(ones(3, 4));",
    "if x > 0\n  y = 1;\nelseif x < 0\n  y = 2;\nelse\n  y = 3;\nend",
    "for i = 1:10\n  s = s + i;\nend",
    "while x < 5\n  x = x + 1;\n  if x == 3, break, end\nend",
    "switch m\ncase 1\n  x = 1;\ncase {2, 3}\n  x = 2;\notherwise\n"
    "  x = 0;\nend",
    "global a, b\nreturn",
    "for i = 1:3\n  continue\nend",
    "disp('hi');\nfprintf('%d\\n', 3);",
]


@pytest.mark.parametrize("idx", range(len(SCRIPTS)))
def test_script_roundtrip(idx):
    roundtrip_script(SCRIPTS[idx])


def test_function_roundtrip():
    src = """function [a, b] = f(x, y)
a = x + y;
b = helper(x);

function z = helper(q)
z = q * 2;
"""
    funcs = parse_function_file(src)
    text = unparse(funcs)
    again = parse_function_file(text)
    assert ast_equal(funcs, again)


def test_unparsed_output_is_comma_delimited():
    text = roundtrip_expr("[1, 2, 3]")
    assert ", " in text


# ---------------------------------------------------------------------- #
# property-based round trip on generated expression trees
# ---------------------------------------------------------------------- #

_names = st.sampled_from(["a", "b", "c", "x", "y"])


@st.composite
def expr_trees(draw, depth=0):
    if depth > 3 or draw(st.integers(0, 2)) == 0:
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return A.Num(value=float(draw(st.integers(0, 99))))
        if choice == 1:
            return A.Ident(name=draw(_names))
        return A.Apply(name=draw(_names),
                       args=[draw(expr_trees(depth=depth + 1))])
    kind = draw(st.integers(0, 3))
    if kind == 0:
        op = draw(st.sampled_from(["+", "-", "*", "/", ".*", "./",
                                   "==", "<", "&", "|", "^"]))
        return A.BinOp(op=op, lhs=draw(expr_trees(depth=depth + 1)),
                       rhs=draw(expr_trees(depth=depth + 1)))
    if kind == 1:
        return A.UnaryOp(op=draw(st.sampled_from(["-", "~"])),
                         operand=draw(expr_trees(depth=depth + 1)))
    if kind == 2:
        return A.Transpose(operand=draw(expr_trees(depth=depth + 1)),
                           conjugate=draw(st.booleans()))
    return A.MatrixLit(rows=[[draw(expr_trees(depth=depth + 1))
                              for _ in range(draw(st.integers(1, 3)))]])


@given(expr_trees())
@settings(max_examples=150)
def test_generated_tree_roundtrip(tree):
    text = unparse_expr(tree)
    again = parse_expression(text)
    assert ast_equal(tree, again), text
