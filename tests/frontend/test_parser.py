"""Parser unit tests."""

import pytest

from repro.errors import ParseError
from repro.frontend import ast_nodes as A
from repro.frontend.parser import (
    parse_expression,
    parse_function_file,
    parse_script,
)


class TestExpressions:
    def test_number(self):
        e = parse_expression("42")
        assert isinstance(e, A.Num) and e.value == 42.0

    def test_precedence_mul_over_add(self):
        e = parse_expression("1 + 2 * 3")
        assert isinstance(e, A.BinOp) and e.op == "+"
        assert isinstance(e.rhs, A.BinOp) and e.rhs.op == "*"

    def test_unary_minus_binds_looser_than_power(self):
        e = parse_expression("-2^2")  # == -(2^2)
        assert isinstance(e, A.UnaryOp) and e.op == "-"
        assert isinstance(e.operand, A.BinOp) and e.operand.op == "^"

    def test_power_accepts_signed_exponent(self):
        e = parse_expression("2^-1")
        assert isinstance(e, A.BinOp) and e.op == "^"
        assert isinstance(e.rhs, A.UnaryOp)

    def test_colon_binds_looser_than_plus(self):
        e = parse_expression("1:n+1")
        assert isinstance(e, A.Range)
        assert isinstance(e.stop, A.BinOp) and e.stop.op == "+"

    def test_three_part_range(self):
        e = parse_expression("0:0.5:10")
        assert isinstance(e, A.Range)
        assert isinstance(e.step, A.Num) and e.step.value == 0.5

    def test_comparison_below_range(self):
        e = parse_expression("1:3 == 2")
        assert isinstance(e, A.BinOp) and e.op == "=="
        assert isinstance(e.lhs, A.Range)

    def test_logical_precedence(self):
        e = parse_expression("a & b | c")
        assert e.op == "|"

    def test_short_circuit_precedence(self):
        e = parse_expression("a && b || c")
        assert e.op == "||"

    def test_transpose_postfix(self):
        e = parse_expression("a'")
        assert isinstance(e, A.Transpose) and e.conjugate

    def test_nonconj_transpose(self):
        e = parse_expression("a.'")
        assert isinstance(e, A.Transpose) and not e.conjugate

    def test_transpose_of_apply(self):
        e = parse_expression("a(1, :)'")
        assert isinstance(e, A.Transpose)
        assert isinstance(e.operand, A.Apply)

    def test_apply_args(self):
        e = parse_expression("f(x, 3, :)")
        assert isinstance(e, A.Apply) and len(e.args) == 3
        assert isinstance(e.args[2], A.Colon)

    def test_end_in_subscript(self):
        e = parse_expression("a(end - 1)")
        assert isinstance(e.args[0], A.BinOp)
        assert isinstance(e.args[0].lhs, A.EndRef)

    def test_nested_parens(self):
        e = parse_expression("((1 + 2)) * 3")
        assert e.op == "*"

    def test_string_literal(self):
        e = parse_expression("'hi'")
        assert isinstance(e, A.Str) and e.value == "hi"

    def test_chained_power_left_assoc(self):
        e = parse_expression("2^3^2")
        assert e.op == "^" and isinstance(e.lhs, A.BinOp)

    def test_matrix_power_of_transpose(self):
        e = parse_expression("a' * a")
        assert e.op == "*"
        assert isinstance(e.lhs, A.Transpose)


class TestMatrixLiterals:
    def test_row(self):
        e = parse_expression("[1, 2, 3]")
        assert isinstance(e, A.MatrixLit)
        assert len(e.rows) == 1 and len(e.rows[0]) == 3

    def test_rows_by_semicolon(self):
        e = parse_expression("[1, 2; 3, 4]")
        assert len(e.rows) == 2

    def test_rows_by_newline(self):
        e = parse_expression("[1, 2\n3, 4]")
        assert len(e.rows) == 2

    def test_empty(self):
        e = parse_expression("[]")
        assert e.rows == []

    def test_nested_expressions(self):
        e = parse_expression("[a + 1, f(2); c', 4]")
        assert len(e.rows) == 2 and len(e.rows[0]) == 2

    def test_whitespace_delimiting_rejected(self):
        # The paper: commas are required between list elements.
        with pytest.raises(ParseError):
            parse_expression("[1 2, 3]")

    def test_continuation_inside_literal(self):
        e = parse_expression("[1, 2, ...\n 3]")
        assert len(e.rows[0]) == 3

    def test_trailing_semicolon_row(self):
        e = parse_expression("[1, 2;]")
        assert len(e.rows) == 1


class TestStatements:
    def test_assignment_display_control(self):
        s = parse_script("x = 1;\ny = 2\n")
        assert not s.body[0].display
        assert s.body[1].display

    def test_expression_statement(self):
        s = parse_script("3 + 4;")
        assert isinstance(s.body[0], A.ExprStmt)

    def test_indexed_assignment(self):
        s = parse_script("a(2, 3) = 7;")
        stmt = s.body[0]
        assert isinstance(stmt.target, A.IndexLValue)
        assert stmt.target.name == "a" and len(stmt.target.args) == 2

    def test_multi_assign(self):
        s = parse_script("[r, c] = size(a);")
        stmt = s.body[0]
        assert isinstance(stmt, A.MultiAssign)
        assert [t.name for t in stmt.targets] == ["r", "c"]

    def test_multi_assign_requires_call(self):
        with pytest.raises(ParseError):
            parse_script("[a, b] = 3;")

    def test_matrix_literal_stmt_not_multiassign(self):
        s = parse_script("[1, 2];")
        assert isinstance(s.body[0], A.ExprStmt)

    def test_if_elseif_else(self):
        s = parse_script("""
if a > 0
    x = 1;
elseif a < 0
    x = 2;
else
    x = 3;
end
""")
        stmt = s.body[0]
        assert isinstance(stmt, A.If)
        assert len(stmt.branches) == 2 and len(stmt.orelse) == 1

    def test_single_line_if(self):
        s = parse_script("if a > 0, x = 1; end")
        assert isinstance(s.body[0], A.If)

    def test_for_loop(self):
        s = parse_script("for i = 1:10\n    x = i;\nend")
        stmt = s.body[0]
        assert isinstance(stmt, A.For) and stmt.var == "i"
        assert isinstance(stmt.iterable, A.Range)

    def test_while_with_break_continue(self):
        s = parse_script("""
while x < 10
    if x == 5, break, end
    if x == 3, continue, end
    x = x + 1;
end
""")
        stmt = s.body[0]
        assert isinstance(stmt, A.While)

    def test_switch(self):
        s = parse_script("""
switch mode
case 1
    x = 1;
case {2, 3}
    x = 2;
otherwise
    x = 0;
end
""")
        stmt = s.body[0]
        assert isinstance(stmt, A.Switch)
        assert len(stmt.cases) == 2
        assert len(stmt.cases[1][0]) == 2  # {2, 3}
        assert len(stmt.otherwise) == 1

    def test_global(self):
        s = parse_script("global a, b = 1;")
        assert isinstance(s.body[0], A.Global)
        assert s.body[0].names == ["a"]

    def test_missing_end_raises(self):
        with pytest.raises(ParseError):
            parse_script("for i = 1:3\n x = i;")

    def test_return_in_script(self):
        s = parse_script("x = 1;\nreturn\ny = 2;")
        assert isinstance(s.body[1], A.Return)


class TestFunctionFiles:
    def test_single_output(self):
        funcs = parse_function_file("function y = f(x)\ny = x + 1;\n")
        assert funcs[0].name == "f"
        assert funcs[0].params == ["x"] and funcs[0].returns == ["y"]

    def test_multiple_outputs(self):
        funcs = parse_function_file(
            "function [a, b] = f(x, y)\na = x;\nb = y;\n")
        assert funcs[0].returns == ["a", "b"]
        assert funcs[0].params == ["x", "y"]

    def test_no_output(self):
        funcs = parse_function_file("function show(x)\ndisp(x);\n")
        assert funcs[0].returns == []

    def test_no_params(self):
        funcs = parse_function_file("function y = f\ny = 42;\n")
        assert funcs[0].params == []

    def test_subfunctions(self):
        funcs = parse_function_file("""
function y = main(x)
y = helper(x) * 2;

function z = helper(x)
z = x + 1;
""")
        assert [f.name for f in funcs] == ["main", "helper"]

    def test_script_is_not_function_file(self):
        with pytest.raises(ParseError):
            parse_function_file("x = 1;")


def test_parse_unit_dispatch():
    from repro.frontend.lexer import tokenize
    from repro.frontend.parser import Parser

    unit = Parser(tokenize("function y = f(x)\ny = x;")).parse_unit("f")
    assert isinstance(unit, list)
    unit2 = Parser(tokenize("x = 3;")).parse_unit("s")
    assert isinstance(unit2, A.Script)


def test_deeply_nested_structures():
    s = parse_script("""
for i = 1:3
    for j = 1:3
        if i == j
            while x < i
                x = x + 1;
            end
        end
    end
end
""")
    assert isinstance(s.body[0], A.For)


def test_comma_separated_statements():
    s = parse_script("a = 1, b = 2; c = 3\n")
    assert len(s.body) == 3
    assert s.body[0].display and not s.body[1].display
