"""Keep the three builtin tables in lock-step: the signature registry, the
interpreter implementations, and the distributed run-time dispatcher."""

from repro.analysis.builtin_sigs import REGISTRY, builtin_names
from repro.interp.builtins import TABLE as INTERP_TABLE
from repro.runtime.builtins import SUPPORTED as RUNTIME_SUPPORTED


def test_interpreter_covers_registry():
    missing = builtin_names() - set(INTERP_TABLE)
    assert not missing, f"interpreter lacks builtins: {sorted(missing)}"


def test_runtime_covers_registry():
    missing = builtin_names() - RUNTIME_SUPPORTED
    assert not missing, f"runtime lacks builtins: {sorted(missing)}"


def test_no_orphan_interpreter_builtins():
    orphans = set(INTERP_TABLE) - builtin_names()
    assert not orphans, f"unregistered interpreter builtins: {sorted(orphans)}"


def test_registry_arities_sane():
    for name, sig in REGISTRY.items():
        assert sig.min_args >= 0
        assert sig.max_args == -1 or sig.max_args >= sig.min_args, name
        assert sig.nargout >= 0, name


def test_every_builtin_callable_in_runtime():
    """Actually invoke every pure builtin through the distributed
    dispatcher with plausible arguments (single rank)."""
    import numpy as np

    from repro.mpi import MEIKO_CS2, run_spmd
    from repro.runtime.context import RuntimeContext

    skip = {"error", "load", "save", "rand", "randn", "tic", "toc",
            "disp", "fprintf"}
    sample_args = {
        0: [],
        1: ["__mat__"],
        2: ["__mat__", 2.0],
        3: ["__mat__", 2.0, 6.0],
    }
    special = {
        "inv": ["__sq__"],
        "det": ["__sq__"],
        "trace": ["__sq__"],
        "sprintf": ["%d", 3.0],
        "num2str": [2.5],
        "int2str": [2.0],
        "reshape": ["__mat__", 2.0, 6.0],
        "repmat": ["__mat__", 2.0, 2.0],
        "linspace": [0.0, 1.0, 7.0],
        "zeros": [3.0, 4.0],
        "ones": [3.0, 4.0],
        "eye": [4.0],
        "atan2": ["__mat__", "__mat__"],
        "hypot": ["__mat__", "__mat__"],
        "power": ["__mat__", 2.0],
        "mod": ["__mat__", 2.0],
        "rem": ["__mat__", 2.0],
        "dot": ["__vec__", "__vec__"],
        "size": ["__mat__"],
        "trapz2": ["__mat__", 1.0, 1.0],
    }

    def fn(comm):
        rt = RuntimeContext(comm, seed=0)
        mat = rt.rand(3.0, 4.0)
        vec = rt.rand(6.0, 1.0)
        sq = rt.ew(lambda x, e: x + 4.0 * e, 1,
                   rt.rand(4.0, 4.0), rt.eye(4.0, 4.0))

        def materialize(a):
            if a == "__mat__":
                return mat
            if a == "__vec__":
                return vec
            if a == "__sq__":
                return sq
            return a

        tried = []
        for name, sig in sorted(REGISTRY.items()):
            if name in skip:
                continue
            args = special.get(name)
            if args is None:
                args = sample_args.get(max(sig.min_args, 0))
            if args is None:
                continue
            out = rt.call_builtin(name, [materialize(a) for a in args], 1)
            tried.append((name, out))
        return len(tried)

    res = run_spmd(2, MEIKO_CS2, fn)
    assert res.results[0] > 40  # actually exercised the table
