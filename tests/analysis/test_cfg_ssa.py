"""CFG construction, dominance, and SSA tests."""

import pytest

from repro.analysis.cfg import build_cfg
from repro.analysis.dominance import compute_dominance
from repro.analysis.ssa import build_ssa
from repro.analysis.resolve import resolve_program
from repro.frontend.parser import parse_script


def cfg_of(src):
    prog = resolve_program(parse_script(src))
    return build_cfg(prog.script.body), prog


def ssa_of(src, params=None):
    prog = resolve_program(parse_script(src))
    return build_ssa(prog.script.body, params)


class TestCFG:
    def test_straight_line_single_block(self):
        cfg, _ = cfg_of("a = 1;\nb = 2;\nc = a + b;")
        reachable = cfg.reachable_order()
        blocks_with_events = [b for b in reachable
                              if cfg.blocks[b].events]
        assert len(blocks_with_events) == 1

    def test_if_makes_diamond(self):
        cfg, _ = cfg_of("x = 1;\nif x > 0\n y = 1;\nelse\n y = 2;\nend\nz = y;")
        # entry(+cond), then, else, join are all reachable
        assert len(cfg.reachable_order()) >= 4

    def test_while_has_back_edge(self):
        cfg, _ = cfg_of("x = 0;\nwhile x < 3\n x = x + 1;\nend")
        has_back = False
        rpo_index = {b: i for i, b in enumerate(cfg.reachable_order())}
        for b in cfg.reachable_order():
            for s in cfg.blocks[b].succs:
                if s in rpo_index and rpo_index[s] <= rpo_index[b]:
                    has_back = True
        assert has_back

    def test_break_exits_loop(self):
        cfg, _ = cfg_of(
            "for i = 1:10\n if i > 3, break, end\nend\nz = 1;")
        assert cfg.exit in cfg.reachable_order()

    def test_return_edges_to_exit(self):
        cfg, _ = cfg_of("x = 1;\nreturn\ny = 2;")
        # the block containing x=1 must reach exit directly
        assert cfg.exit in cfg.reachable_order()

    def test_all_reachable_blocks_have_path_to_entry(self):
        cfg, _ = cfg_of("""
for i = 1:3
    if i == 2
        continue
    end
    x = i;
end
""")
        order = cfg.reachable_order()
        assert order[0] == cfg.entry


class TestDominance:
    def test_entry_dominates_all(self):
        cfg, _ = cfg_of("a = 1;\nif a > 0\n b = 1;\nend\nc = 2;")
        dom = compute_dominance(cfg)
        for b in dom.rpo:
            assert dom.dominates(cfg.entry, b)

    def test_branch_does_not_dominate_join(self):
        cfg, _ = cfg_of("a = 1;\nif a > 0\n b = 1;\nelse\n b = 2;\nend\nc = b;")
        dom = compute_dominance(cfg)
        # the join block has two preds; neither branch dominates it
        joins = [b for b in dom.rpo
                 if len([p for p in cfg.blocks[b].preds
                         if p in dom.idom]) >= 2]
        assert joins
        join = joins[0]
        preds = cfg.blocks[join].preds
        for p in preds:
            if p != dom.idom[join]:
                assert not dom.dominates(p, join)

    def test_dominance_frontier_of_branches_is_join(self):
        cfg, _ = cfg_of("a = 1;\nif a > 0\n b = 1;\nelse\n b = 2;\nend\nc = b;")
        dom = compute_dominance(cfg)
        frontier_targets = set()
        for b in dom.rpo:
            frontier_targets |= dom.frontier[b]
        joins = [b for b in dom.rpo if len(cfg.blocks[b].preds) >= 2]
        assert set(joins) <= frontier_targets

    def test_dom_tree_preorder_starts_at_entry(self):
        cfg, _ = cfg_of("x = 1;\nwhile x < 5\n x = x + 1;\nend")
        dom = compute_dominance(cfg)
        order = dom.dom_tree_preorder()
        assert order[0] == cfg.entry
        assert set(order) == set(dom.rpo)


class TestSSA:
    def test_single_assignment_per_value(self):
        ssa = ssa_of("x = 1;\nx = 2;\nx = x + 1;")
        xs = ssa.versions_of("x")
        # entry version + 3 defs
        assert len(xs) == 4
        indices = [v.index for v in xs]
        assert len(set(indices)) == len(indices)

    def test_phi_at_if_join(self):
        ssa = ssa_of("a = 1;\nif a > 0\n x = 1;\nelse\n x = 2;\nend\ny = x;")
        phis = [p for p in ssa.all_phis() if p.var == "x"]
        assert len(phis) == 1
        assert len(phis[0].args) == 2

    def test_phi_at_loop_header(self):
        ssa = ssa_of("x = 0;\nfor i = 1:3\n x = x + 1;\nend\ny = x;")
        phis = [p for p in ssa.all_phis() if p.var == "x"]
        assert phis, "loop-carried variable needs a header phi"

    def test_use_annotated_with_reaching_def(self):
        ssa = ssa_of("x = 1;\ny = x;\nx = 2;\nz = x;")
        # uses of x: the first maps to version of first def, second to
        # second def
        uses = [v for k, v in ssa.use_of.items() if v.var == "x"]
        assert len({u.vid for u in uses}) == 2

    def test_params_defined_at_entry(self):
        from repro.frontend.parser import parse_function_file

        funcs = parse_function_file(
            "function y = f(a, b)\ny = a + b;")
        ssa = build_ssa(funcs[0].body, params=["a", "b"])
        assert "a" in ssa.param_values and "b" in ssa.param_values

    def test_implicit_use_of_indexed_target(self):
        ssa = ssa_of("a = zeros(3, 1);\na(2) = 5;")
        found = [key for key in ssa.implicit_use_of if key[1] == "a"]
        assert found

    def test_phi_args_cover_preds(self):
        ssa = ssa_of("""
x = 0;
for i = 1:4
    if i > 2
        x = x + 10;
    end
end
y = x;
""")
        for phi in ssa.all_phis():
            block_preds = set(ssa.cfg.blocks[phi.block].preds)
            assert set(phi.args) <= block_preds
            assert phi.args  # never empty

    def test_while_condition_uses_phi(self):
        ssa = ssa_of("x = 0;\nwhile x < 5\n x = x + 1;\nend")
        phis = [p for p in ssa.all_phis() if p.var == "x"]
        assert phis
