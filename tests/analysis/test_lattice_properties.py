"""Algebraic laws of the inference lattice (hypothesis)."""

from hypothesis import given, strategies as st

from repro.analysis.lattice import (
    BOTTOM,
    BaseType,
    Rank,
    Shape,
    UNKNOWN,
    VarType,
)

base_types = st.sampled_from(list(BaseType))
ranks = st.sampled_from(list(Rank))
dims = st.one_of(st.none(), st.integers(0, 12))
shapes = st.builds(Shape, rows=dims, cols=dims)
# engine invariant: fully-bottom values always carry the unknown shape
var_types = st.builds(VarType, base=base_types, rank=ranks,
                      shape=shapes).map(
    lambda v: BOTTOM if (v.base is BaseType.BOTTOM
                         and v.rank is Rank.BOTTOM) else v)


class TestBaseTypeLattice:
    @given(base_types, base_types)
    def test_commutative(self, a, b):
        assert a.join(b) == b.join(a)

    @given(base_types, base_types, base_types)
    def test_associative(self, a, b, c):
        assert a.join(b).join(c) == a.join(b.join(c))

    @given(base_types)
    def test_idempotent(self, a):
        assert a.join(a) == a

    @given(base_types)
    def test_bottom_identity(self, a):
        assert BaseType.BOTTOM.join(a) == a

    @given(base_types)
    def test_unknown_absorbs(self, a):
        assert a.join(BaseType.UNKNOWN) == BaseType.UNKNOWN

    def test_numeric_chain(self):
        assert BaseType.INTEGER.join(BaseType.REAL) is BaseType.REAL
        assert BaseType.REAL.join(BaseType.COMPLEX) is BaseType.COMPLEX
        assert BaseType.LITERAL.join(BaseType.REAL) is BaseType.UNKNOWN


class TestRankLattice:
    @given(ranks, ranks)
    def test_commutative(self, a, b):
        assert a.join(b) == b.join(a)

    @given(ranks, ranks, ranks)
    def test_associative(self, a, b, c):
        assert a.join(b).join(c) == a.join(b.join(c))

    @given(ranks)
    def test_idempotent(self, a):
        assert a.join(a) == a

    def test_scalar_matrix_conflict_is_unknown(self):
        assert Rank.SCALAR.join(Rank.MATRIX) is Rank.UNKNOWN


class TestShapeLattice:
    @given(shapes, shapes)
    def test_commutative(self, a, b):
        assert a.join(b) == b.join(a)

    @given(shapes, shapes, shapes)
    def test_associative(self, a, b, c):
        assert a.join(b).join(c) == a.join(b.join(c))

    @given(shapes)
    def test_idempotent(self, a):
        assert a.join(a) == a

    @given(shapes)
    def test_join_with_unknown_dims_loses_info_monotonically(self, a):
        joined = a.join(Shape(None, None))
        assert joined == Shape(None, None)

    @given(shapes)
    def test_transpose_involution(self, a):
        assert a.transposed().transposed() == a

    @given(shapes)
    def test_numel_consistent(self, a):
        n = a.numel()
        if a.is_static:
            assert n == a.rows * a.cols
        else:
            assert n is None


class TestVarTypeLattice:
    @given(var_types, var_types)
    def test_commutative(self, a, b):
        assert a.join(b) == b.join(a)

    @given(var_types)
    def test_idempotent(self, a):
        assert a.join(a) == a

    @given(var_types)
    def test_bottom_is_identity(self, a):
        assert BOTTOM.join(a) == a
        assert a.join(BOTTOM) == a

    @given(var_types, var_types, var_types)
    def test_associative_modulo_bottom(self, a, b, c):
        # full associativity holds because BOTTOM short-circuits
        assert a.join(b).join(c) == a.join(b.join(c))

    @given(var_types, var_types)
    def test_join_is_upper_bound_on_base(self, a, b):
        j = a.join(b)
        # joining again with either side never goes back down
        assert j.join(a) == j
        assert j.join(b) == j
