"""Type / rank / shape inference (pass 3) tests."""

import numpy as np
import pytest

from repro.analysis.infer import infer_types
from repro.analysis.lattice import BaseType, Rank, Shape
from repro.analysis.resolve import resolve_program
from repro.errors import InferenceError
from repro.frontend.mfile import DictProvider
from repro.frontend.parser import parse_script


def infer(src, mfiles=None, data_files=None):
    provider = DictProvider(mfiles or {}, data_files or {})
    return infer_types(resolve_program(parse_script(src), provider))


def vt(types, name):
    return types.script.var_types[name]


class TestScalars:
    def test_integer_literal(self):
        t = infer("x = 3;")
        assert vt(t, "x").base is BaseType.INTEGER
        assert vt(t, "x").rank is Rank.SCALAR

    def test_real_literal(self):
        t = infer("x = 3.5;")
        assert vt(t, "x").base is BaseType.REAL

    def test_imaginary_literal(self):
        t = infer("z = 2 + 3i;")
        assert vt(t, "z").base is BaseType.COMPLEX

    def test_integer_arithmetic_stays_integer(self):
        t = infer("x = 2 + 3 * 4;")
        assert vt(t, "x").base is BaseType.INTEGER

    def test_division_widen_to_real(self):
        t = infer("x = 1 / 3;")
        assert vt(t, "x").base is BaseType.REAL

    def test_constant_propagation(self):
        t = infer("n = 100;\nm = n * 2;")
        assert t.script.var_consts["m"] == 200.0

    def test_string_is_literal_type(self):
        t = infer("s = 'abc';")
        assert vt(t, "s").base is BaseType.LITERAL

    def test_pi_constant(self):
        t = infer("x = 2 * pi;")
        assert abs(t.script.var_consts["x"] - 2 * np.pi) < 1e-12


class TestShapes:
    def test_zeros_shape_from_constants(self):
        t = infer("a = zeros(3, 5);")
        assert vt(t, "a").shape == Shape(3, 5)

    def test_shape_through_variable_constant(self):
        t = infer("n = 64;\na = rand(n, n);")
        assert vt(t, "a").shape == Shape(64, 64)

    def test_matmul_shape(self):
        t = infer("a = ones(3, 4);\nb = ones(4, 5);\nc = a * b;")
        assert vt(t, "c").shape == Shape(3, 5)

    def test_matmul_dim_mismatch_raises(self):
        with pytest.raises(InferenceError):
            infer("a = ones(3, 4);\nb = ones(5, 6);\nc = a * b;")

    def test_elementwise_mismatch_raises(self):
        with pytest.raises(InferenceError):
            infer("a = ones(3, 4);\nb = ones(4, 3);\nc = a + b;")

    def test_transpose_shape(self):
        t = infer("a = ones(3, 5);\nb = a';")
        assert vt(t, "b").shape == Shape(5, 3)

    def test_dot_product_is_scalar(self):
        t = infer("v = ones(9, 1);\ns = v' * v;")
        assert vt(t, "s").rank is Rank.SCALAR

    def test_outer_product_shape(self):
        t = infer("u = ones(3, 1);\nv = ones(1, 4);\nw = u * v;")
        assert vt(t, "w").shape == Shape(3, 4)

    def test_range_shape(self):
        t = infer("r = 1:10;")
        assert vt(t, "r").shape == Shape(1, 10)

    def test_range_with_step(self):
        t = infer("r = 0:0.25:1;")
        assert vt(t, "r").shape == Shape(1, 5)

    def test_matrix_literal_shape(self):
        t = infer("m = [1, 2, 3; 4, 5, 6];")
        assert vt(t, "m").shape == Shape(2, 3)

    def test_block_literal_shape(self):
        t = infer("a = ones(2, 2);\nm = [a, a; a, a];")
        assert vt(t, "m").shape == Shape(4, 4)

    def test_scalar_literal_is_scalar(self):
        t = infer("x = [42];")
        assert vt(t, "x").rank is Rank.SCALAR

    def test_reduction_of_matrix_is_row(self):
        t = infer("a = ones(4, 6);\ns = sum(a);")
        assert vt(t, "s").shape == Shape(1, 6)

    def test_reduction_of_vector_is_scalar(self):
        t = infer("v = ones(6, 1);\ns = sum(v);")
        assert vt(t, "s").rank is Rank.SCALAR

    def test_indexing_scalar(self):
        t = infer("a = ones(4, 4);\nx = a(2, 3);")
        assert vt(t, "x").rank is Rank.SCALAR

    def test_indexing_column(self):
        t = infer("a = ones(4, 6);\nc = a(:, 2);")
        assert vt(t, "c").shape == Shape(4, 1)

    def test_indexing_with_range(self):
        t = infer("a = ones(8, 8);\nb = a(2:4, :);")
        assert vt(t, "b").shape == Shape(3, 8)


class TestControlFlowJoin:
    def test_type_join_across_if(self):
        t = infer("""
if q > 0
    x = 1;
else
    x = 2.5;
end
""", mfiles={"q": "function y = q\ny = 1;"})
        assert vt(t, "x").base is BaseType.REAL
        assert vt(t, "x").rank is Rank.SCALAR

    def test_rank_join_degrades(self):
        t = infer("""
if q > 0
    x = 3;
else
    x = ones(2, 2);
end
""", mfiles={"q": "function y = q\ny = 1;"})
        # storage must assume matrix
        assert vt(t, "x").rank is Rank.MATRIX

    def test_loop_carried_shape_stable(self):
        t = infer("""
x = zeros(16, 1);
A = rand(16, 16);
for i = 1:10
    x = A * x + x;
end
""")
        assert vt(t, "x").shape == Shape(16, 1)

    def test_loop_var_from_range(self):
        t = infer("for i = 1:10\n y = i;\nend")
        assert vt(t, "i").rank is Rank.SCALAR
        assert vt(t, "i").base is BaseType.INTEGER

    def test_loop_var_from_matrix_is_column(self):
        t = infer("A = ones(3, 5);\nfor c = A\n s = sum(c);\nend")
        assert vt(t, "c").shape == Shape(3, 1)


class TestIndexedAssignment:
    def test_store_in_bounds_keeps_shape(self):
        t = infer("a = zeros(4, 4);\na(2, 2) = 5;")
        assert vt(t, "a").shape == Shape(4, 4)

    def test_store_growth_degrades_shape(self):
        t = infer("a = zeros(4, 4);\nn = 9;\na(n, 1) = 5;")
        shape = vt(t, "a").shape
        assert shape.rows is None  # may grow

    def test_store_with_colon_keeps_shape(self):
        t = infer("a = zeros(4, 4);\na(:, 2) = ones(4, 1);")
        assert vt(t, "a").shape == Shape(4, 4)

    def test_creating_store(self):
        t = infer("b(3) = 1;")
        assert vt(t, "b").rank is Rank.MATRIX

    def test_complex_store_widens_base(self):
        t = infer("a = zeros(2, 2);\na(1, 1) = 2i;")
        assert vt(t, "a").base is BaseType.COMPLEX


class TestInterprocedural:
    def test_return_type_flows_to_caller(self):
        t = infer("y = f(3);", mfiles={
            "f": "function y = f(x)\ny = x * 2.5;"})
        assert vt(t, "y").base is BaseType.REAL
        assert vt(t, "y").rank is Rank.SCALAR

    def test_matrix_through_function(self):
        t = infer("b = scale(ones(4, 4));", mfiles={
            "scale": "function y = scale(a)\ny = a * 2;"})
        assert vt(t, "b").rank is Rank.MATRIX

    def test_multiple_returns(self):
        t = infer("[r, c] = dims(ones(3, 7));", mfiles={
            "dims": "function [r, c] = dims(a)\n"
                    "r = size(a, 1);\nc = size(a, 2);"})
        assert vt(t, "r").rank is Rank.SCALAR
        assert vt(t, "c").rank is Rank.SCALAR

    def test_two_call_sites_join(self):
        t = infer("a = f(1);\nb = f(ones(2, 2));", mfiles={
            "f": "function y = f(x)\ny = x + 1;"})
        # y joins scalar and matrix -> caller sees the join
        assert vt(t, "b").rank in (Rank.MATRIX, Rank.UNKNOWN)

    def test_recursion_converges(self):
        t = infer("y = fact(5);", mfiles={
            "fact": """function y = fact(n)
if n <= 1
    y = 1;
else
    y = n * fact(n - 1);
end
"""})
        assert vt(t, "y").rank is Rank.SCALAR


class TestEndAndSize:
    def test_end_const_from_static_shape(self):
        t = infer("a = zeros(3, 7);\nx = a(end, end);")
        assert vt(t, "x").rank is Rank.SCALAR

    def test_size_two_outputs(self):
        t = infer("a = zeros(3, 7);\n[r, c] = size(a);")
        assert vt(t, "r").base is BaseType.INTEGER

    def test_size_one_output_is_vector(self):
        t = infer("a = zeros(3, 7);\ns = size(a);")
        assert vt(t, "s").shape == Shape(1, 2)


class TestLoadInference:
    def test_load_typed_from_sample(self):
        t = infer("d = load('data.dat');",
                  data_files={"data.dat": np.ones((4, 5))})
        assert vt(t, "d").rank is Rank.MATRIX
        assert vt(t, "d").base is BaseType.INTEGER  # all-integral sample

    def test_load_real_sample(self):
        t = infer("d = load('x.dat');",
                  data_files={"x.dat": np.array([[1.5, 2.5]])})
        assert vt(t, "d").base is BaseType.REAL

    def test_load_without_sample_raises(self):
        with pytest.raises(InferenceError):
            infer("d = load('missing.dat');")

    def test_load_through_const_propagated_name(self):
        # constant propagation lets the compiler find the sample even
        # through a variable
        t = infer("s = 'x.dat';\nd = load(s);",
                  data_files={"x.dat": np.array([[1.5, 2.5]])})
        assert vt(t, "d").base is BaseType.REAL

    def test_load_dynamic_name_raises(self):
        with pytest.raises(InferenceError):
            infer("""
q = 1;
if q > 0
    s = 'a.dat';
else
    s = 'b.dat';
end
d = load(s);
""", data_files={"a.dat": np.ones(3), "b.dat": np.ones(3)})


def test_complex_propagates_through_ops():
    t = infer("z = 1 + 2i;\nw = z * 3;\nr = real(w);")
    assert vt(t, "w").base is BaseType.COMPLEX
    assert vt(t, "r").base is BaseType.REAL


def test_comparison_yields_logical_integer():
    t = infer("a = ones(3, 3);\nm = a > 0;")
    assert vt(t, "m").base is BaseType.INTEGER
    assert vt(t, "m").shape == Shape(3, 3)
