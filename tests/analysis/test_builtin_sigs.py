"""Unit tests for the builtin signature rules (inference layer)."""

import pytest

from repro.analysis.builtin_sigs import REGISTRY, get_sig, is_builtin
from repro.analysis.lattice import (
    BaseType,
    Rank,
    Shape,
    UNKNOWN_SHAPE,
    matrix,
    scalar,
)


def rule(name, args, consts=None):
    sig = get_sig(name)
    assert sig is not None
    return sig.rule(args, consts or [None] * len(args))


class TestGeneratorRules:
    def test_zeros_two_const_dims(self):
        out = rule("zeros", [scalar(BaseType.INTEGER)] * 2, [4, 7])
        assert out.shape == Shape(4, 7)
        assert out.rank is Rank.MATRIX

    def test_zeros_square_from_one_arg(self):
        out = rule("zeros", [scalar(BaseType.INTEGER)], [5])
        assert out.shape == Shape(5, 5)

    def test_zeros_no_args_scalar(self):
        out = rule("zeros", [], [])
        assert out.rank is Rank.SCALAR

    def test_unknown_const_gives_dynamic_shape(self):
        out = rule("ones", [scalar()] * 2, [None, 3])
        assert out.shape == Shape(None, 3)

    def test_linspace_length_from_const(self):
        out = rule("linspace", [scalar(), scalar(), scalar()],
                   [0.0, 1.0, 11])
        assert out.shape == Shape(1, 11)


class TestElementwiseRules:
    def test_sqrt_keeps_shape_widens_int(self):
        out = rule("sqrt", [matrix(BaseType.INTEGER, Shape(3, 4))])
        assert out.shape == Shape(3, 4)
        assert out.base is BaseType.REAL

    def test_abs_preserves_complexness_choice(self):
        out = rule("abs", [matrix(BaseType.COMPLEX, Shape(2, 2))])
        assert out.shape == Shape(2, 2)

    def test_floor_keeps_integer(self):
        out = rule("floor", [scalar(BaseType.INTEGER)])
        assert out.base is BaseType.INTEGER

    def test_real_forces_real(self):
        out = rule("real", [matrix(BaseType.COMPLEX, Shape(2, 3))])
        assert out.base is BaseType.REAL

    def test_binary_broadcast_scalar(self):
        out = rule("mod", [scalar(), matrix(BaseType.REAL, Shape(4, 4))])
        assert out.shape == Shape(4, 4)


class TestReductionRules:
    def test_matrix_reduces_to_row(self):
        out = rule("sum", [matrix(BaseType.REAL, Shape(5, 7))])
        assert out.shape == Shape(1, 7)

    def test_vector_reduces_to_scalar(self):
        out = rule("sum", [matrix(BaseType.REAL, Shape(9, 1))])
        assert out.rank is Rank.SCALAR

    def test_dim2_reduces_rows(self):
        out = rule("sum", [matrix(BaseType.REAL, Shape(5, 7)), scalar()],
                   [None, 2])
        assert out.shape == Shape(5, 1)

    def test_unknown_orientation_degrades(self):
        out = rule("sum", [matrix(BaseType.REAL, UNKNOWN_SHAPE)])
        assert out.rank is Rank.UNKNOWN

    def test_max_two_outputs(self):
        out = rule("max", [matrix(BaseType.REAL, Shape(9, 1))])
        assert isinstance(out, tuple)
        value, index = out
        assert index.base is BaseType.INTEGER


class TestQueryAndStructureRules:
    def test_size_with_dim(self):
        out = rule("size", [matrix(), scalar()], [None, 1])
        assert out.rank is Rank.SCALAR

    def test_size_tuple_form(self):
        out = rule("size", [matrix()])
        assert isinstance(out, tuple) and len(out) == 3

    def test_reshape_shape_from_consts(self):
        out = rule("reshape", [matrix(BaseType.REAL, Shape(2, 6)),
                               scalar(), scalar()], [None, 3, 4])
        assert out.shape == Shape(3, 4)

    def test_repmat_multiplies_shape(self):
        out = rule("repmat", [matrix(BaseType.REAL, Shape(2, 3)),
                              scalar(), scalar()], [None, 2, 4])
        assert out.shape == Shape(4, 12)

    def test_diag_vector_to_matrix(self):
        out = rule("diag", [matrix(BaseType.REAL, Shape(5, 1))])
        assert out.shape == Shape(5, 5)

    def test_diag_matrix_to_vector(self):
        out = rule("diag", [matrix(BaseType.REAL, Shape(4, 6))])
        assert out.shape == Shape(4, 1)

    def test_transpose_rule(self):
        out = rule("transpose", [matrix(BaseType.REAL, Shape(3, 8))])
        assert out.shape == Shape(8, 3)


class TestRegistryMetadata:
    def test_lookup_api(self):
        assert is_builtin("sum") and not is_builtin("no_such_fn")
        assert get_sig("nope") is None

    def test_accepts_ranges(self):
        sig = get_sig("fprintf")
        assert sig.accepts(1) and sig.accepts(9)  # variadic
        assert not sig.accepts(0)
        sqrt = get_sig("sqrt")
        assert sqrt.accepts(1) and not sqrt.accepts(2)

    def test_impure_marked(self):
        for name in ("rand", "randn", "disp", "fprintf", "load", "save",
                     "tic", "toc", "error"):
            assert not REGISTRY[name].pure, name

    def test_pure_marked(self):
        for name in ("sum", "sqrt", "zeros", "size", "inv"):
            assert REGISTRY[name].pure, name
