"""Identifier-resolution (pass 2) tests."""

import pytest

from repro.errors import ResolutionError
from repro.frontend import ast_nodes as A
from repro.frontend.mfile import DictProvider
from repro.frontend.parser import parse_script
from repro.analysis.resolve import resolve_program


def resolve(src, mfiles=None):
    return resolve_program(parse_script(src),
                           DictProvider(mfiles or {}))


def find_applies(prog):
    out = []
    for node in A.walk(prog.script.node):
        if isinstance(node, A.Apply):
            out.append(node)
    return out


class TestVariableVsFunction:
    def test_assigned_name_is_index(self):
        prog = resolve("a = zeros(3, 3);\nb = a(1, 2);")
        applies = {n.name: n.resolved for n in find_applies(prog)}
        assert applies["a"] == "index"
        assert applies["zeros"] == "builtin"

    def test_unassigned_name_is_builtin(self):
        prog = resolve("x = sum(ones(4, 1));")
        applies = {n.name: n.resolved for n in find_applies(prog)}
        assert applies["sum"] == "builtin"

    def test_user_function_resolved(self):
        prog = resolve("y = f(3);", {"f": "function y = f(x)\ny = x + 1;"})
        assert "f" in prog.functions
        applies = {n.name: n.resolved for n in find_applies(prog)}
        assert applies["f"] == "call"

    def test_variable_shadows_builtin(self):
        prog = resolve("sum = 3;\nx = sum(1);")
        applies = {n.name: n.resolved for n in find_applies(prog)}
        assert applies["sum"] == "index"

    def test_loop_var_is_variable(self):
        prog = resolve("for i = 1:3\n x = i(1);\nend")
        applies = {n.name: n.resolved for n in find_applies(prog)}
        assert applies["i"] == "index"

    def test_undefined_identifier_raises(self):
        with pytest.raises(ResolutionError):
            resolve("x = no_such_thing_anywhere;")

    def test_undefined_function_raises(self):
        with pytest.raises(ResolutionError):
            resolve("x = no_such_fn(3);")

    def test_zero_arg_builtin_as_ident(self):
        prog = resolve("x = pi;")
        applies = find_applies(prog)
        assert applies and applies[0].name == "pi"
        assert applies[0].resolved == "builtin"

    def test_zero_arg_user_function_as_ident(self):
        prog = resolve("x = answer;",
                       {"answer": "function y = answer\ny = 42;"})
        applies = find_applies(prog)
        assert applies[0].resolved == "call"


class TestMFiles:
    def test_transitive_functions(self):
        prog = resolve("y = f(1);", {
            "f": "function y = f(x)\ny = g(x) * 2;",
            "g": "function y = g(x)\ny = x + 1;",
        })
        assert set(prog.functions) == {"f", "g"}

    def test_recursive_function(self):
        prog = resolve("y = fact(5);", {
            "fact": """function y = fact(n)
if n <= 1
    y = 1;
else
    y = n * fact(n - 1);
end
"""})
        assert "fact" in prog.functions

    def test_subfunction_visibility(self):
        prog = resolve("y = outer(2);", {
            "outer": """function y = outer(x)
y = inner(x) + 1;

function z = inner(x)
z = x * 10;
"""})
        assert "inner" in prog.functions

    def test_function_params_are_variables(self):
        prog = resolve("y = f(ones(2, 2));",
                       {"f": "function y = f(a)\ny = a(1, 1);"})
        func_node = prog.functions["f"].node
        for node in A.walk(func_node):
            if isinstance(node, A.Apply) and node.name == "a":
                assert node.resolved == "index"


class TestEndBinding:
    def test_end_bound_to_var_and_axis(self):
        prog = resolve("a = zeros(3, 4);\nx = a(end, end);")
        ends = [n for n in A.walk(prog.script.node)
                if isinstance(n, A.EndRef)]
        assert len(ends) == 2
        assert all(e.var == "a" and e.nargs == 2 for e in ends)
        assert {e.axis for e in ends} == {0, 1}

    def test_linear_end(self):
        prog = resolve("a = zeros(3, 4);\nx = a(end);")
        end = [n for n in A.walk(prog.script.node)
               if isinstance(n, A.EndRef)][0]
        assert end.nargs == 1

    def test_nested_end_binds_innermost(self):
        prog = resolve("a = zeros(3, 1);\nb = zeros(5, 1);\n"
                       "x = a(b(end) - 4);")
        end = [n for n in A.walk(prog.script.node)
               if isinstance(n, A.EndRef)][0]
        assert end.var == "b"

    def test_end_in_lvalue(self):
        prog = resolve("a = zeros(3, 1);\na(end) = 7;")
        end = [n for n in A.walk(prog.script.node)
               if isinstance(n, A.EndRef)][0]
        assert end.var == "a"


class TestErrors:
    def test_colon_passed_to_function(self):
        with pytest.raises(ResolutionError):
            resolve("x = sum(:);")

    def test_builtin_arity_checked(self):
        with pytest.raises(ResolutionError):
            resolve("x = sqrt(1, 2);")

    def test_multiassign_of_indexing_rejected(self):
        with pytest.raises(ResolutionError):
            resolve("a = zeros(2, 2);\n[x, y] = a(1, 2);")


def test_ans_defined_by_expression_statement():
    prog = resolve("3 + 4\nx = ans * 2;")
    assert prog.script.symtab.is_variable("ans")
