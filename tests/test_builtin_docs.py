"""docs/BUILTINS.md must match the registry (regenerate with
``python -m repro.tools.builtin_table``)."""

import os

from repro.tools.builtin_table import generate

DOC = os.path.join(os.path.dirname(__file__), "..", "docs", "BUILTINS.md")


def test_builtin_doc_is_fresh():
    with open(DOC, encoding="utf-8") as fh:
        checked_in = fh.read()
    assert checked_in == generate(), (
        "docs/BUILTINS.md is stale; run python -m repro.tools.builtin_table")


def test_doc_mentions_every_builtin():
    from repro.analysis.builtin_sigs import REGISTRY

    with open(DOC, encoding="utf-8") as fh:
        text = fh.read()
    for name in REGISTRY:
        assert f"`{name}`" in text, name
