"""Diagnostic-quality tests: every compile-time error carries a usable
source location and message."""

import pytest

from repro.errors import (
    DiagnosticError,
    InferenceError,
    LexError,
    ParseError,
    ResolutionError,
    SourceLocation,
)
from repro.compiler import compile_source


def location_of(exc: DiagnosticError) -> SourceLocation:
    return exc.loc


class TestLexerDiagnostics:
    def test_bad_char_location(self):
        with pytest.raises(LexError) as err:
            compile_source("x = 1;\ny = $;")
        assert err.value.loc.line == 2
        assert err.value.loc.col == 5

    def test_unterminated_string_points_at_quote(self):
        with pytest.raises(LexError) as err:
            compile_source("s = 'oops")
        assert err.value.loc.line == 1
        assert err.value.loc.col == 5


class TestParserDiagnostics:
    def test_whitespace_matrix_message(self):
        with pytest.raises(ParseError) as err:
            compile_source("m = [1 2];")
        assert "comma" in str(err.value)

    def test_missing_end_line(self):
        with pytest.raises(ParseError) as err:
            compile_source("for i = 1:3\nx = i;")
        assert "end" in str(err.value) or "eof" in str(err.value).lower()

    def test_bad_assignment_target(self):
        with pytest.raises(ParseError) as err:
            compile_source("x + 1 = 3;")
        assert "target" in str(err.value) or "statement" in str(err.value)


class TestResolutionDiagnostics:
    def test_undefined_names_both_named_and_located(self):
        with pytest.raises(ResolutionError) as err:
            compile_source("a = 1;\nb = a + mystery_name;")
        assert "mystery_name" in str(err.value)
        assert err.value.loc.line == 2

    def test_bad_arity_names_builtin(self):
        with pytest.raises(ResolutionError) as err:
            compile_source("x = sqrt(1, 2, 3);")
        assert "sqrt" in str(err.value)

    def test_colon_to_function_located(self):
        with pytest.raises(ResolutionError) as err:
            compile_source("x = max(:);")
        assert "':'" in str(err.value)


class TestInferenceDiagnostics:
    def test_dimension_mismatch_shows_shapes(self):
        with pytest.raises(InferenceError) as err:
            compile_source("a = ones(2, 3);\nb = ones(4, 5);\nc = a + b;")
        msg = str(err.value)
        assert "2x3" in msg and "4x5" in msg

    def test_inner_dim_mismatch_shows_shapes(self):
        with pytest.raises(InferenceError) as err:
            compile_source("a = ones(2, 3);\nb = ones(5, 4);\nc = a * b;")
        msg = str(err.value)
        assert "inner" in msg

    def test_missing_sample_file_names_file(self):
        with pytest.raises(InferenceError) as err:
            compile_source("d = load('ocean_field.dat');")
        assert "ocean_field.dat" in str(err.value)


class TestErrorStringFormat:
    def test_diagnostic_prefix_is_file_line_col(self):
        with pytest.raises(ResolutionError) as err:
            compile_source("x = nope;", name="myscript")
        text = str(err.value)
        assert text.startswith("myscript:1:")

    def test_source_location_repr(self):
        loc = SourceLocation("f.m", 3, 9)
        assert repr(loc) == "f.m:3:9"

    def test_source_location_equality_and_hash(self):
        a = SourceLocation("f.m", 1, 2)
        b = SourceLocation("f.m", 1, 2)
        assert a == b and hash(a) == hash(b)
        assert a != SourceLocation("f.m", 1, 3)
