"""Benchmark-infrastructure tests (small scale, fast)."""

import numpy as np
import pytest

from repro.baselines.matcom import DEFAULT_MATCOM, matcom_time
from repro.bench import (
    ALL_KEYS,
    BenchHarness,
    TABLE1,
    make_workload,
    render_figure2,
    render_speedup_figure,
    render_table1,
    table1,
)
from repro.bench.figures import figure2, speedup_figure
from repro.mpi import MEIKO_CS2, SPARC20_CLUSTER


@pytest.fixture(scope="module")
def harness():
    return BenchHarness()


class TestWorkloads:
    @pytest.mark.parametrize("key", ALL_KEYS)
    def test_compile_and_run_small(self, key, harness):
        w = make_workload(key, scale="small")
        t = harness.otter_time(w, nprocs=2)
        assert t > 0

    @pytest.mark.parametrize("key", ALL_KEYS)
    def test_paper_scale_parameters(self, key):
        w = make_workload(key, scale="paper")
        # paper sizes embedded in the source
        if key == "cg":
            assert "n = 2048;" in w.source
        if key == "nbody":
            assert "n = 5000;" in w.source

    def test_mscripts_package_data_in_sync(self):
        import os

        import repro.bench as bench_pkg

        d = os.path.join(os.path.dirname(bench_pkg.__file__), "mscripts")
        for key in ALL_KEYS:
            with open(os.path.join(d, f"{key}.m")) as fh:
                assert fh.read() == make_workload(key, "paper").source

    def test_oracle_cross_check_fires_on_divergence(self, harness):
        w = make_workload("cg", scale="small")
        harness.interpreter_time(w)
        with pytest.raises(AssertionError):
            harness._check_output(w, "cg: n=512 resid=9.9e+00 err=9.9e+00\n")


class TestTable1:
    def test_eight_systems(self):
        assert len(table1()) == 8

    def test_only_falcon_and_otter_pure_parallel(self):
        pure = [r.name for r in TABLE1 if r.pure_matlab_parallel]
        assert sorted(pure) == ["FALCON", "Otter"]

    def test_render(self):
        text = render_table1(table1())
        assert "Otter" in text and "Oregon State" in text


class TestFigure2Small:
    def test_otter_beats_interpreter_everywhere(self, harness):
        fig = figure2(scale="small", harness=harness)
        assert fig.otter_beats_interpreter_everywhere()

    def test_two_two_split(self, harness):
        fig = figure2(scale="small", harness=harness)
        assert fig.split_vs_matcom() == (2, 2)

    def test_render(self, harness):
        text = render_figure2(figure2(scale="small", harness=harness))
        assert "MATCOM" in text and "2-2" in text


class TestSpeedupCurves:
    def test_curve_monotone_in_output(self, harness):
        w = make_workload("closure", scale="small")
        curve = harness.speedup_curve(w, MEIKO_CS2, nprocs=[1, 2, 4])
        assert curve.at(2) > curve.at(1)

    def test_figure_object(self, harness):
        fig = speedup_figure(6, scale="small", harness=harness,
                             nprocs=[1, 2])
        assert set(fig.curves) == {
            "Meiko CS-2", "Sun Enterprise 4000", "SPARCserver-20 cluster"}
        text = render_speedup_figure(fig)
        assert "Figure 6" in text

    def test_speedups_relative_to_own_machine(self, harness):
        w = make_workload("cg", scale="small")
        curve = harness.speedup_curve(w, SPARC20_CLUSTER, nprocs=[1])
        # single-CPU compiled speedup over the interpreter is
        # machine-relative, so roughly machine-independent
        meiko = harness.speedup_curve(w, MEIKO_CS2, nprocs=[1])
        assert curve.at(1) == pytest.approx(meiko.at(1), rel=0.5)


class TestMatcomBaseline:
    def test_matcom_faster_than_interpreter(self, harness):
        w = make_workload("cg", scale="small")
        t_interp = harness.interpreter_time(w)
        t_matcom = harness.matcom_time(w)
        assert t_matcom < t_interp

    def test_matcom_time_function(self):
        t = matcom_time("a = rand(50, 50);\nb = a * a;\ns = sum(sum(b));",
                        MEIKO_CS2)
        assert t > 0

    def test_matcom_produces_same_results(self):
        from repro.analysis.resolve import resolve_program
        from repro.baselines.matcom import run_matcom
        from repro.frontend.parser import parse_script
        from repro.interp.interpreter import run_source

        src = "rand('seed', 2);\na = rand(6, 6);\ns = sum(sum(a));"
        interp, _ = run_matcom(resolve_program(parse_script(src)), MEIKO_CS2)
        oracle = run_source(src)
        assert interp.workspace["s"] == oracle.workspace["s"]


def test_calibration_bands_well_formed():
    from repro.bench.calibration import (
        FIG2_CLAIMS,
        FIG_MEIKO16_BANDS,
        MEIKO16_ORDERING,
    )

    assert FIG2_CLAIMS["split"] == (2, 2)
    assert set(MEIKO16_ORDERING) == set(FIG_MEIKO16_BANDS)
    for band in FIG_MEIKO16_BANDS.values():
        assert band.lo < band.hi
