"""Cost-model relationships among the three systems (the quantities
behind Figure 2's mechanism)."""

import pytest

from repro.analysis.resolve import resolve_program
from repro.baselines.matcom import DEFAULT_MATCOM, MatcomModel, run_matcom
from repro.compiler import compile_source
from repro.frontend.parser import parse_script
from repro.interp.costmodel import CostMeter
from repro.interp.interpreter import Interpreter
from repro.mpi.machine import MEIKO_CS2


def interp_time(src):
    meter = CostMeter(MEIKO_CS2.cpu.interpreter_params())
    Interpreter(resolve_program(parse_script(src)), meter=meter).run()
    return meter.time


def matcom_time_of(src):
    _, t = run_matcom(resolve_program(parse_script(src)), MEIKO_CS2)
    return t


def otter_time_of(src):
    return compile_source(src).run(nprocs=1).elapsed


ELEMENTWISE_CHAIN = """
rand('seed', 1);
a = rand(200, 200);
b = rand(200, 200);
c = sqrt(a) + a .* b - 2 * abs(b) + sin(a) ./ (b + 1);
s = sum(sum(c));
"""

KERNEL_DOMINATED = """
rand('seed', 1);
a = rand(160, 160);
b = a * a;
c = b * a;
s = sum(sum(c));
"""

STATEMENT_HEAVY = """
x = 0;
for i = 1:2000
    x = x + i;
end
"""


class TestOrderings:
    def test_everyone_beats_the_interpreter(self):
        for src in (ELEMENTWISE_CHAIN, KERNEL_DOMINATED):
            ti = interp_time(src)
            assert matcom_time_of(src) < ti
            assert otter_time_of(src) < ti

    def test_otter_fusion_wins_elementwise_chains(self):
        assert otter_time_of(ELEMENTWISE_CHAIN) \
            < matcom_time_of(ELEMENTWISE_CHAIN)

    def test_matcom_wins_kernel_dominated(self):
        assert matcom_time_of(KERNEL_DOMINATED) \
            < otter_time_of(KERNEL_DOMINATED)

    def test_interpreter_statement_dispatch_dominates_scalar_loops(self):
        ti = interp_time(STATEMENT_HEAVY)
        tm = matcom_time_of(STATEMENT_HEAVY)
        # 2000 statements at ~12us dispatch vs compiled ~0.3us
        assert ti > 10 * tm


class TestModelKnobs:
    def test_matcom_model_parameterizable(self):
        slow = MatcomModel(flop_factor=10.0)
        src = KERNEL_DOMINATED
        program = resolve_program(parse_script(src))
        _, t_default = run_matcom(program, MEIKO_CS2, DEFAULT_MATCOM)
        _, t_slow = run_matcom(program, MEIKO_CS2, slow)
        assert t_slow > t_default * 5

    def test_interpreter_params_derived_from_cpu(self):
        params = MEIKO_CS2.cpu.interpreter_params()
        assert params.flop_time / MEIKO_CS2.cpu.flop_time \
            == pytest.approx(MEIKO_CS2.cpu.interp_flop_factor)

    def test_meter_charge_accounting(self):
        meter = CostMeter(MEIKO_CS2.cpu.interpreter_params())
        meter.charge_flops(65_000_000)
        base = meter.time
        meter.reset()
        assert meter.time == 0.0
        meter.charge_elementwise(1000, nops=3)
        assert 0 < meter.time < base
