"""The content-addressed compile cache (docs/SERVICE.md).

Covers both tiers (LRU memory with injectable clock, atomic on-disk),
key canonicalization, single-flight concurrency, dependency staleness,
and the acceptance criterion: a warm request performs zero compiler
passes and its run is bit-identical to the cold one, canonical trace
SHA included, on all three SPMD backends.
"""

import hashlib
import threading

import pytest

from repro.frontend.mfile import DictProvider, DirectoryProvider
from repro.mpi.machine import MEIKO_CS2, get_machine
from repro.service.cache import (
    CompileCache,
    canonical_source,
    resolve_disk_root,
)
from repro.trace import canonical_events
from repro.tuning.plan import Plan

SRC = "x = ones(4, 4) * 2;\ndisp(sum(sum(x)));\n"
SRC_WS = "% a comment\nx   = ones(4,4)*2 ;\n\n\ndisp( sum(sum(x)) );  % more\n"
SRC_B = "y = zeros(3, 3) + 5;\ndisp(sum(sum(y)));\n"
SRC_C = "z = ones(2, 6);\ndisp(sum(sum(z')));\n"

COMM_SRC = (
    "A = ones(8, 8);\n"
    "v = ones(8, 1);\n"
    "w = A * v;\n"
    "disp(sum(w));\n"
)


def trace_sha(result) -> str:
    return hashlib.sha256(
        canonical_events(result.trace).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------- #
# keys
# ---------------------------------------------------------------------- #


def test_canonical_source_collapses_layout_and_comments():
    assert canonical_source(SRC) == canonical_source(SRC_WS)
    assert canonical_source(SRC) != canonical_source(SRC_B)


def test_canonical_source_of_unparsable_text_is_verbatim():
    broken = "for i = (((\n"
    assert canonical_source(broken) == broken


def test_key_is_whitespace_insensitive():
    cache = CompileCache(disk_root=False)
    assert cache.key(SRC) == cache.key(SRC_WS)


def test_key_differs_on_every_component():
    cache = CompileCache(disk_root=False)
    base = dict(name="script", provider=None, plan=None, nprocs=4,
                machine=MEIKO_CS2, backend=None, native=None)
    reference = cache.key(SRC, **base)
    variants = [
        dict(base, name="other"),
        dict(base, provider=DictProvider({"f": "function y = f(x)\ny = x;"})),
        dict(base, plan=Plan(fusion=())),
        dict(base, nprocs=8),
        dict(base, machine=get_machine("cluster")),
        dict(base, backend="fused"),
        dict(base, native="off"),
    ]
    keys = [cache.key(SRC, **v) for v in variants] + [cache.key(SRC_B, **base)]
    for key in keys:
        assert key != reference
    assert len(set(keys)) == len(keys)


# ---------------------------------------------------------------------- #
# memory tier
# ---------------------------------------------------------------------- #


def test_memory_hit_returns_same_object_with_zero_passes():
    cache = CompileCache(disk_root=False)
    cold = cache.get_or_compile(SRC, nprocs=2, machine=MEIKO_CS2)
    assert not cold.hit and cold.passes and cold.compile_seconds >= 0
    warm = cache.get_or_compile(SRC_WS, nprocs=2, machine=MEIKO_CS2)
    assert warm.hit and warm.tier == "memory"
    assert warm.passes == []
    assert warm.program is cold.program
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["compiles"] == 1


def test_lru_eviction_drops_least_recent():
    cache = CompileCache(max_entries=2, disk_root=False)
    a = cache.get_or_compile(SRC)
    b = cache.get_or_compile(SRC_B)
    cache.get_or_compile(SRC)            # touch A: B is now the LRU
    cache.get_or_compile(SRC_C)          # evicts B
    assert cache.contains(a.key)
    assert not cache.contains(b.key)
    assert cache.stats()["evictions_lru"] == 1


def test_ttl_eviction_with_fake_clock(fake_clock):
    cache = CompileCache(disk_root=False, ttl=10.0, clock=fake_clock)
    cold = cache.get_or_compile(SRC)
    fake_clock.tick(5.0)
    assert cache.get_or_compile(SRC).hit          # refreshes the stamp
    fake_clock.tick(9.0)
    assert cache.get_or_compile(SRC).hit          # 9 < ttl since touch
    fake_clock.tick(11.0)
    again = cache.get_or_compile(SRC)
    assert not again.hit
    assert cache.stats()["evictions_ttl"] == 1
    # the compile-projection memo still shares the program object
    assert again.shared and again.program is cold.program


def test_single_flight_compiles_once_across_threads():
    cache = CompileCache(disk_root=False)
    nthreads = 8
    barrier = threading.Barrier(nthreads)
    outcomes = [None] * nthreads

    def worker(i):
        barrier.wait()
        outcomes[i] = cache.get_or_compile(COMM_SRC, nprocs=4,
                                           machine=MEIKO_CS2)

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(nthreads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert cache.stats()["compiles"] == 1
    programs = {id(o.program) for o in outcomes}
    assert len(programs) == 1
    assert sum(1 for o in outcomes if not o.hit and not o.shared) == 1


def test_clear_resets_entries_and_stats():
    cache = CompileCache(disk_root=False)
    cold = cache.get_or_compile(SRC)
    cache.clear()
    stats = cache.stats()
    assert stats["size"] == 0 and stats["hits"] == 0
    fresh = cache.get_or_compile(SRC)
    assert not fresh.hit and not fresh.shared
    assert fresh.program is not cold.program


# ---------------------------------------------------------------------- #
# disk tier
# ---------------------------------------------------------------------- #


def test_disk_tier_rehydrates_across_cache_instances(tmp_path):
    root = tmp_path / "programs"
    first = CompileCache(disk_root=root)
    cold = first.get_or_compile(COMM_SRC, nprocs=4, machine=MEIKO_CS2)
    r_cold = cold.program.run(nprocs=4, machine=MEIKO_CS2, trace=True)

    # a "fresh process": new cache instance over the same directory
    second = CompileCache(disk_root=root)
    warm = second.get_or_compile(COMM_SRC, nprocs=4, machine=MEIKO_CS2)
    assert warm.hit and warm.tier == "disk"
    assert warm.passes == []
    assert warm.program.from_cache
    assert warm.program.python_source == cold.program.python_source
    assert second.stats()["disk_hits"] == 1

    r_warm = warm.program.run(nprocs=4, machine=MEIKO_CS2, trace=True)
    assert r_warm.output == r_cold.output
    assert r_warm.elapsed == r_cold.elapsed
    assert trace_sha(r_warm) == trace_sha(r_cold)

    # front-end artifacts recompile lazily, identically
    assert warm.program.c_source == cold.program.c_source
    assert not warm.program.from_cache


def test_disk_entry_with_stale_mfile_dep_recompiles(tmp_path):
    root = tmp_path / "programs"
    mdir = tmp_path / "mfiles"
    mdir.mkdir()
    helper = mdir / "triple.m"
    helper.write_text("function y = triple(x)\ny = x * 3;\n",
                      encoding="utf-8")
    src = "a = triple(7);\ndisp(a);\n"
    provider = DirectoryProvider([str(mdir)])

    first = CompileCache(disk_root=root)
    cold = first.get_or_compile(src, provider=provider)
    assert "21" in cold.program.run().output

    # same search path (same key), drifted content: the dep validator
    # must reject the disk entry and recompile against the new source
    helper.write_text("function y = triple(x)\ny = x * 4;\n",
                      encoding="utf-8")
    second = CompileCache(disk_root=root)
    fresh_provider = DirectoryProvider([str(mdir)])
    warm = second.get_or_compile(src, provider=fresh_provider)
    assert not warm.hit
    assert second.stats()["disk_hits"] == 0
    assert "28" in warm.program.run().output


def test_disk_tier_is_opt_in(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_COMPILE_CACHE", raising=False)
    assert resolve_disk_root() is None
    for off in ("0", "off", "NONE", "disabled", ""):
        monkeypatch.setenv("REPRO_COMPILE_CACHE", off)
        assert resolve_disk_root() is None
    monkeypatch.setenv("REPRO_COMPILE_CACHE", str(tmp_path / "cc"))
    assert resolve_disk_root() == tmp_path / "cc"


def test_disk_false_never_touches_directory(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_COMPILE_CACHE", str(tmp_path / "cc"))
    cache = CompileCache(disk_root=False)
    cache.get_or_compile(SRC)
    assert not (tmp_path / "cc").exists()


def test_get_or_compile_disk_false_skips_lookup_and_publish(tmp_path):
    root = tmp_path / "programs"
    cache = CompileCache(disk_root=root)
    cache.get_or_compile(SRC, disk=False)
    assert not list(root.glob("p_*.json")) if root.exists() else True


# ---------------------------------------------------------------------- #
# the acceptance criterion: warm == cold, bit for bit, on every backend
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", ["lockstep", "threads", "fused"])
def test_warm_run_bit_identical_to_cold(backend, tmp_path):
    root = tmp_path / "programs"
    cold_cache = CompileCache(disk_root=root)
    cold = cold_cache.get_or_compile(COMM_SRC, nprocs=4, machine=MEIKO_CS2,
                                     backend=backend)
    assert not cold.hit and cold.passes
    r_cold = cold.program.run(nprocs=4, machine=MEIKO_CS2, backend=backend,
                              trace=True)

    for warm_cache in (cold_cache, CompileCache(disk_root=root)):
        warm = warm_cache.get_or_compile(COMM_SRC, nprocs=4,
                                         machine=MEIKO_CS2, backend=backend)
        assert warm.hit
        assert warm.passes == []       # zero compiler passes when warm
        r_warm = warm.program.run(nprocs=4, machine=MEIKO_CS2,
                                  backend=backend, trace=True)
        assert r_warm.output == r_cold.output
        assert r_warm.elapsed == r_cold.elapsed
        assert r_warm.spmd.messages_sent == r_cold.spmd.messages_sent
        assert r_warm.spmd.bytes_sent == r_cold.spmd.bytes_sent
        assert trace_sha(r_warm) == trace_sha(r_cold)
        assert set(r_warm.workspace) == set(r_cold.workspace)
