"""Concurrency stress: N sessions hammering one server.

Pins the multiplexing contract (docs/SERVICE.md): exactly one compile
per unique request key no matter how many sessions race, no cross-
session workspace or RNG bleed, and a per-request watchdog that aborts
only its own session's run.
"""

import threading

import pytest

from repro.service import ServiceError, ServiceServer
from repro.service.cache import CompileCache

NPROCS = 2

# miniature versions of the paper's workload mix
HEAT = (
    "u = zeros(8, 8);\n"
    "f = ones(8, 8);\n"
    "for it = 1:5\n"
    "  u = u + f * 0.1;\n"
    "end\n"
    "disp(sum(sum(u)));\n"
)
CG = (
    "A = ones(6, 6) + 5 * eye(6);\n"
    "x = ones(6, 1);\n"
    "for it = 1:4\n"
    "  x = A * x;\n"
    "end\n"
    "disp(sum(x));\n"
)
OCEAN = (
    "psi = ones(8, 8);\n"
    "for it = 1:3\n"
    "  psi = psi * 0.5 + 1;\n"
    "end\n"
    "disp(sum(sum(psi)));\n"
)
WORKLOADS = (HEAT, CG, OCEAN)

RAND_SRC = "r = rand(6, 6);\ndisp(sum(sum(r)));\n"

SLOW = (
    "s = 0;\n"
    "for i = 1:5000\n"
    "  s = s + sum(sum(ones(8, 8)));\n"
    "end\n"
    "disp(s);\n"
)


def _run_threads(workers):
    threads = [threading.Thread(target=w) for w in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def test_stress_one_compile_per_unique_key_and_identical_outputs():
    server = ServiceServer(cache=CompileCache(disk_root=False))
    nthreads, rounds = 9, 3
    barrier = threading.Barrier(nthreads)
    results: dict[int, list] = {}
    failures: list = []

    def session(tid):
        try:
            with server.loopback() as client:
                barrier.wait()
                mine = []
                for r in range(rounds):
                    src = WORKLOADS[(tid + r) % len(WORKLOADS)]
                    reply = client.run(src, nprocs=NPROCS)
                    mine.append((src, reply["output"], reply["elapsed"]))
                results[tid] = mine
        except Exception as exc:  # noqa: BLE001 — collected for the assert
            failures.append((tid, exc))

    _run_threads([lambda tid=i: session(tid) for i in range(nthreads)])
    assert not failures
    assert len(results) == nthreads

    # exactly one compile per unique source, no matter the contention
    stats = server.cache.stats()
    assert stats["compiles"] == len(WORKLOADS)
    assert stats["hits"] + stats["misses"] == nthreads * rounds

    # every session saw the same (output, modeled time) per source
    by_source: dict[str, set] = {}
    for mine in results.values():
        for src, output, elapsed in mine:
            by_source.setdefault(src, set()).add((output, elapsed))
    assert set(by_source) == set(WORKLOADS)
    for src, outcomes in by_source.items():
        assert len(outcomes) == 1, f"nondeterministic results for {src!r}"


def test_no_rng_bleed_between_concurrent_sessions():
    """Seeded RNG state is per-run: concurrent sessions using different
    seeds must each see their seed's exact stream, repeatably."""
    server = ServiceServer(cache=CompileCache(disk_root=False))
    seeds = (0, 1, 2, 3)
    repeats = 3
    barrier = threading.Barrier(len(seeds))
    outputs: dict[int, set] = {seed: set() for seed in seeds}
    failures: list = []

    def session(seed):
        try:
            with server.loopback() as client:
                barrier.wait()
                for _ in range(repeats):
                    reply = client.run(RAND_SRC, nprocs=NPROCS, seed=seed)
                    outputs[seed].add(reply["output"])
        except Exception as exc:  # noqa: BLE001
            failures.append((seed, exc))

    _run_threads([lambda s=seed: session(s) for seed in seeds])
    assert not failures
    # deterministic within a seed...
    for seed in seeds:
        assert len(outputs[seed]) == 1
    # ...and distinct across seeds (no shared RNG stream)
    distinct = {next(iter(outputs[seed])) for seed in seeds}
    assert len(distinct) == len(seeds)
    # one compile served every seed (seed is not part of the key)
    assert server.cache.stats()["compiles"] == 1


def test_watchdog_fires_per_session_not_per_server():
    server = ServiceServer(cache=CompileCache(disk_root=False))
    barrier = threading.Barrier(2)
    box: dict = {}

    def victim():
        with server.loopback() as client:
            barrier.wait()
            try:
                client.run(SLOW, nprocs=NPROCS, watchdog=1e-6)
                box["victim"] = "no error"
            except ServiceError as exc:
                box["victim"] = exc.kind
            # the session itself survives its aborted run
            box["victim_after"] = client.run(HEAT, nprocs=NPROCS)["output"]

    def bystander():
        with server.loopback() as client:
            barrier.wait()
            box["bystander"] = client.run(HEAT, nprocs=NPROCS)["output"]

    _run_threads([victim, bystander])
    assert box["victim"] == "SpmdWatchdogError"
    assert box["victim_after"] == box["bystander"]
    with server.loopback() as probe:
        assert probe.stats()["tracker_installed"] is False


@pytest.mark.parametrize("tier", ["memory", "disk"])
def test_stress_with_disk_tier_stays_single_flight(tier, tmp_path):
    root = False if tier == "memory" else tmp_path / "programs"
    server = ServiceServer(cache=CompileCache(disk_root=root))
    nthreads = 6
    barrier = threading.Barrier(nthreads)
    failures: list = []

    def session():
        try:
            with server.loopback() as client:
                barrier.wait()
                assert client.run(CG, nprocs=NPROCS)["ok"]
        except Exception as exc:  # noqa: BLE001
            failures.append(exc)

    _run_threads([session] * nthreads)
    assert not failures
    assert server.cache.stats()["compiles"] == 1
