"""The compile/run service: session loop, ops, error paths, TCP.

Most tests drive the server through :meth:`ServiceServer.loopback` —
the identical ``serve_session`` dispatch loop as TCP, over an in-process
transport whose JSON round-trip proves every response is serializable.
The TCP tests at the bottom cover the real socket path and shutdown.
"""

import numpy as np
import pytest

from repro.service import (
    ServiceClient,
    ServiceError,
    ServiceServer,
    default_manager,
)
from repro.service.cache import CompileCache

SRC = "x = ones(8, 8);\ndisp(sum(sum(x)));\n"
SRC_FUN = "a = double_it(21);\ndisp(a);\n"
MFILES = {"double_it": "function y = double_it(x)\ny = x * 2;\n"}


@pytest.fixture
def server():
    return ServiceServer(cache=CompileCache(disk_root=False))


@pytest.fixture
def client(server):
    with server.loopback() as c:
        yield c


# ---------------------------------------------------------------------- #
# ops
# ---------------------------------------------------------------------- #


def test_ping(client):
    reply = client.ping()
    assert reply["pong"] and reply["session"] == 1
    assert reply["protocol"] == 1


def test_compile_then_run_shares_the_key(server, client):
    compiled = client.compile(SRC, nprocs=4)
    assert not compiled["cached"] and compiled["passes"]
    ran = client.run(SRC, nprocs=4)
    assert ran["cached"] and ran["key"] == compiled["key"]
    assert ran["passes"] == []
    assert ran["output"].strip() == "64"
    assert server.cache.stats()["compiles"] == 1


def test_cold_and_warm_runs_are_identical(client):
    cold = client.run(SRC, nprocs=4)
    warm = client.run(SRC, nprocs=4)
    assert not cold["cached"] and warm["cached"] and warm["tier"] == "memory"
    assert warm["passes"] == []
    for field in ("output", "elapsed", "rank_times", "messages", "bytes",
                  "collectives", "workspace"):
        assert warm[field] == cold[field]


def test_run_reports_modeled_numbers_and_workspace(client):
    reply = client.run("s = 2.5;\nm = ones(2, 3);\nt = 'hi';\n", nprocs=2)
    assert reply["elapsed"] > 0 and len(reply["rank_times"]) == 2
    ws = reply["workspace"]
    assert ws["s"] == {"type": "double", "data": 2.5}
    assert ws["m"]["type"] == "matrix" and ws["m"]["shape"] == [2, 3]
    assert ws["t"] == {"type": "char", "data": "hi"}


def test_mfiles_travel_with_the_request(client):
    reply = client.run(SRC_FUN, nprocs=2, mfiles=MFILES)
    assert reply["output"].strip() == "42"


def test_trace_op_is_deterministic(client):
    first = client.trace(SRC, nprocs=4)
    second = client.trace(SRC, nprocs=4)
    assert first["trace"]["sha"] == second["trace"]["sha"]
    assert first["trace"]["events"] > 0
    assert "pass_report" in second["trace"]
    assert "[cache] hit" in second["trace"]["pass_report"]
    assert SRC.splitlines()[0].split(";")[0] in first["trace"]["profile"]


def test_run_with_trace_flag_returns_the_sha(client):
    reply = client.run(SRC, nprocs=2, trace=True)
    assert set(reply["trace"]) == {"sha", "events"}


def test_hosted_data_is_shared_across_sessions(server):
    default_manager().save_matrix("mem://srv/grid",
                                  np.arange(16.0).reshape(4, 4))
    src = ("a = load('mem://srv/grid');\n"
           "save('mem://srv/out', a);\n"
           "disp(sum(sum(a)));\n")
    with server.loopback() as one:
        assert one.run(src, nprocs=4)["output"].strip() == "120"
    with server.loopback() as two:
        assert two.run(src, nprocs=4)["cached"]
    out = default_manager().load_matrix("mem://srv/out")
    assert float(out.sum()) == 120.0


def test_stats_reports_cache_counters_and_schemes(client):
    client.run(SRC, nprocs=2)
    reply = client.stats()
    assert reply["cache"]["compiles"] == 1
    assert reply["counters"]["runs"] == 1
    assert reply["store_schemes"] == ["file", "mem", "s3"]


# ---------------------------------------------------------------------- #
# error paths — the session must survive every one of them
# ---------------------------------------------------------------------- #


def test_unknown_op_is_a_structured_error(client):
    with pytest.raises(ServiceError) as err:
        client._checked("frobnicate")
    assert "unknown op" in str(err.value)
    assert client.ping()["pong"]          # session survived


def test_missing_source_and_bad_nprocs(client):
    with pytest.raises(ServiceError):
        client.compile(None)
    with pytest.raises(ServiceError) as err:
        client.run(SRC, nprocs=0)
    assert "nprocs" in str(err.value)
    assert client.ping()["pong"]


def test_compile_diagnostics_carry_their_type(client):
    with pytest.raises(ServiceError) as err:
        client.run("x = undefined_fn(3);\n", nprocs=2)
    assert err.value.kind == "ResolutionError"
    assert "undefined_fn" in str(err.value)


def test_failed_run_releases_the_session_memory_tracker(client):
    """Regression: a failing run must not leave its thread-local memory
    tracker installed on the session thread (the stats op exposes the
    probe)."""
    with pytest.raises(ServiceError):
        client.run("x = ones(2, 2);\nerror('boom');\n", nprocs=1)
    reply = client.stats()
    assert reply["tracker_installed"] is False
    assert reply["counters"]["errors"] == 1
    # and the session still works
    assert client.run(SRC, nprocs=2)["output"].strip() == "64"


def test_watchdog_aborts_only_the_request(client):
    slow = ("s = 0;\n"
            "for i = 1:5000\n"
            "  s = s + sum(sum(ones(8, 8)));\n"
            "end\n"
            "disp(s);\n")
    with pytest.raises(ServiceError) as err:
        client.run(slow, nprocs=2, watchdog=1e-6)
    assert err.value.kind == "SpmdWatchdogError"
    assert client.run(SRC, nprocs=2)["output"].strip() == "64"
    assert client.stats()["tracker_installed"] is False


# ---------------------------------------------------------------------- #
# TCP
# ---------------------------------------------------------------------- #


def test_tcp_sessions_share_the_cache_and_shutdown_stops(server):
    host, port = server.start()
    try:
        with ServiceClient.connect(host, port) as one, \
                ServiceClient.connect(host, port) as two:
            cold = one.run(SRC, nprocs=4)
            warm = two.run(SRC, nprocs=4)
            assert not cold["cached"] and warm["cached"]
            assert warm["output"] == cold["output"]
            stats = one.stats()
            assert stats["counters"]["sessions"] >= 2
            assert two.shutdown()["ok"]
        assert server.stopped
    finally:
        server.stop()


def test_serve_forever_unblocks_on_shutdown(server):
    import threading

    host, port = server.start()
    waiter = threading.Thread(target=server.serve_forever, daemon=True)
    waiter.start()
    with ServiceClient.connect(host, port) as c:
        c.shutdown()
    waiter.join(timeout=5)
    assert not waiter.is_alive()
