"""Regression: the thread-local memory tracker must be released on
every failure path — a constructor that dies after installing it, and a
failing inline (nprocs==1 / fused) run.

The leak mode: ``RuntimeContext.__init__`` installs the tracker, then
registers its checkpoint payload with the world's recovery store; if
that registration raises, the caller never receives a context to
``close()``, so the tracker silently keeps charging every allocation on
the thread for the rest of the process.
"""

import pytest

from repro.compiler import compile_source
from repro.errors import OtterError
from repro.mpi.machine import MEIKO_CS2
from repro.runtime.context import RuntimeContext
from repro.runtime.memory import current_tracker


class _ExplodingStore:
    def register_payload(self, rank, payload):
        raise RuntimeError("recovery store rejected the registration")


class _Recovery:
    store = _ExplodingStore()


class _World:
    recovery = _Recovery()


class _Comm:
    """Just enough comm surface for the constructor to run."""

    rank = 0
    size = 1
    is_fused = False
    world = _World()


def test_constructor_failure_releases_the_tracker():
    assert current_tracker() is None
    with pytest.raises(RuntimeError):
        RuntimeContext(_Comm())
    assert current_tracker() is None


def test_successful_construction_keeps_tracker_until_close():
    class _QuietWorld:
        recovery = None

    class _QuietComm(_Comm):
        world = _QuietWorld()

    rt = RuntimeContext(_QuietComm())
    assert current_tracker() is rt.memory
    rt.close()
    assert current_tracker() is None


@pytest.mark.parametrize("backend", ["lockstep", "fused"])
def test_failing_inline_run_releases_the_tracker(backend):
    """nprocs==1 and fused runs execute on the caller's thread — a
    raising program must still tear the tracker down."""
    program = compile_source("x = ones(2, 2);\nerror('boom');\n")
    assert current_tracker() is None
    # lockstep surfaces the crash as MpiError, fused as the MATLAB
    # error itself — both are OtterError, and both paths must clean up
    with pytest.raises(OtterError):
        program.run(nprocs=1, machine=MEIKO_CS2, backend=backend)
    assert current_tracker() is None


def test_close_is_idempotent_and_scoped():
    class _QuietWorld:
        recovery = None

    class _QuietComm(_Comm):
        world = _QuietWorld()

    first = RuntimeContext(_QuietComm())
    second = RuntimeContext(_QuietComm())
    # `second` owns the slot now; closing `first` must not clobber it
    first.close()
    assert current_tracker() is second.memory
    second.close()
    second.close()
    assert current_tracker() is None
