"""Service-layer fixtures.

Every test gets a private process-wide compile cache and store manager,
so cache statistics and hosted ``mem://`` data never leak between tests
(or into the rest of the suite, which shares the same process-global
singletons through ``compile_cached``).
"""

import pytest

from repro.service.cache import CompileCache, set_compile_cache
from repro.service.stores import StoreManager, set_default_manager


class FakeClock:
    """Deterministic injectable clock for TTL-eviction tests."""

    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def tick(self, dt: float = 1.0) -> None:
        self.now += dt


@pytest.fixture
def fake_clock() -> FakeClock:
    return FakeClock()


@pytest.fixture(autouse=True)
def fresh_cache():
    """Swap in a fresh memory-only process cache for the test."""
    cache = CompileCache(disk_root=False)
    previous = set_compile_cache(cache)
    yield cache
    set_compile_cache(previous)


@pytest.fixture(autouse=True)
def fresh_stores():
    """Swap in a fresh default store manager for the test."""
    manager = StoreManager()
    previous = set_default_manager(manager)
    yield manager
    set_default_manager(previous)
