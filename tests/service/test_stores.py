"""Pluggable URL-schema datastores and their runtime integration.

``load``/``save`` resolve ``scheme://`` targets through a
:class:`StoreManager`; the key behavioural claim is *trace parity* —
the same script charges identical communication against hosted data as
against a provider sample file, so traces stay bit-identical.
"""

import hashlib

import numpy as np
import pytest

from repro.errors import MatlabRuntimeError
from repro.frontend.mfile import DictProvider
from repro.interp.interpreter import run_source
from repro.mpi.machine import MEIKO_CS2
from repro.runtime.context import RuntimeContext
from repro.service.cache import get_compile_cache
from repro.service.stores import (
    FileStore,
    MemStore,
    S3Store,
    StoreError,
    StoreManager,
    StoreUnavailableError,
    default_manager,
    is_store_url,
    parse_url,
)
from repro.trace import canonical_events


# ---------------------------------------------------------------------- #
# URL plumbing
# ---------------------------------------------------------------------- #


def test_parse_url_and_predicate():
    assert parse_url("mem://bucket/key.dat") == ("mem", "bucket/key.dat")
    assert parse_url("FILE:///tmp/x")[0] == "file"
    assert is_store_url("s3://b/k") and not is_store_url("plain.dat")
    with pytest.raises(StoreError):
        parse_url("no-scheme-here")


def test_unknown_scheme_names_the_known_ones():
    with pytest.raises(StoreError) as err:
        StoreManager().resolve("gopher://x/y")
    assert "mem" in str(err.value) and "s3" in str(err.value)


def test_register_replaces_factory_and_instance():
    manager = StoreManager()
    first = manager.store_for("mem")
    manager.register("mem", MemStore)
    assert manager.store_for("mem") is not first
    assert manager.schemes() == ["file", "mem", "s3"]


# ---------------------------------------------------------------------- #
# the schemes
# ---------------------------------------------------------------------- #


def test_mem_store_object_lifecycle():
    store = MemStore()
    assert not store.exists("a/b")
    store.put("a/b", b"123")
    assert store.exists("a/b") and store.get("a/b") == b"123"
    store.put("a/c", b"456")
    assert store.listdir("a") == ["a/b", "a/c"]
    store.delete("a/b")
    with pytest.raises(StoreError):
        store.get("a/b")
    with pytest.raises(StoreError):
        store.delete("a/b")


def test_file_store_round_trip(tmp_path):
    manager = StoreManager()
    url = f"file://{tmp_path}/sub/grid.dat"
    matrix = np.arange(12.0).reshape(3, 4) / 7.0
    manager.save_matrix(url, matrix)
    assert manager.exists(url)
    np.testing.assert_array_equal(manager.load_matrix(url), matrix)
    store = FileStore()
    assert "grid.dat" in store.listdir(str(tmp_path) + "/sub")
    store.delete(f"{tmp_path}/sub/grid.dat")
    assert not manager.exists(url)


def test_matrix_text_round_trip_is_exact():
    # %.17g round-trips every float64 exactly
    store = MemStore()
    rng = np.random.default_rng(7)
    matrix = rng.standard_normal((5, 3))
    store.save_matrix("m", matrix)
    np.testing.assert_array_equal(store.load_matrix("m"), matrix)


class FakeS3Client:
    """The boto3 surface the stub speaks, over a dict."""

    def __init__(self):
        self.objects = {}

    def get_object(self, Bucket, Key):
        import io

        if (Bucket, Key) not in self.objects:
            raise KeyError(Key)
        return {"Body": io.BytesIO(self.objects[(Bucket, Key)])}

    def put_object(self, Bucket, Key, Body):
        self.objects[(Bucket, Key)] = bytes(Body)

    def head_object(self, Bucket, Key):
        if (Bucket, Key) not in self.objects:
            raise KeyError(Key)
        return {}

    def delete_object(self, Bucket, Key):
        self.objects.pop((Bucket, Key), None)


def test_s3_stub_with_injected_client():
    client = FakeS3Client()
    store = S3Store(client=client)
    store.put("bucket/data/x.dat", b"1 2 3\n")
    assert store.exists("bucket/data/x.dat")
    assert store.get("bucket/data/x.dat") == b"1 2 3\n"
    store.delete("bucket/data/x.dat")
    assert not store.exists("bucket/data/x.dat")
    with pytest.raises(StoreError):
        store.get("bucket/data/x.dat")
    with pytest.raises(StoreError):
        store.get("bucket-without-key")


def test_s3_without_boto3_degrades_clearly(monkeypatch):
    import sys

    # a None module entry makes `import boto3` raise ImportError, so
    # this exercises the degraded path whether or not boto3 is baked in
    monkeypatch.setitem(sys.modules, "boto3", None)
    store = S3Store()
    with pytest.raises(StoreUnavailableError) as err:
        store.get("bucket/key")
    assert "boto3" in str(err.value)


# ---------------------------------------------------------------------- #
# runtime integration: load/save through the manager
# ---------------------------------------------------------------------- #

LOAD_SRC = "a = load('{target}');\nb = a * 2;\ndisp(sum(sum(b)));\n"


def _run(source, provider=None, nprocs=4, **kw):
    outcome = get_compile_cache().get_or_compile(source, provider=provider,
                                                nprocs=nprocs,
                                                machine=MEIKO_CS2)
    return outcome.program.run(nprocs=nprocs, machine=MEIKO_CS2,
                               trace=True, **kw)


def test_hosted_load_matches_provider_sample_bit_for_bit():
    """Same data via mem:// and via a provider sample file: identical
    output, modeled time, and canonical trace (the parity contract the
    load() comm charges are written to keep)."""
    data = np.arange(36.0).reshape(6, 6)
    default_manager().save_matrix("mem://host/grid", data)
    hosted = _run(LOAD_SRC.format(target="mem://host/grid"))

    provider = DictProvider({}, data_files={"grid.dat": data})
    sampled = _run(LOAD_SRC.format(target="grid.dat"), provider=provider)

    assert hosted.output == sampled.output
    assert hosted.elapsed == sampled.elapsed

    def sha(result):
        return hashlib.sha256(
            canonical_events(result.trace).encode("utf-8")).hexdigest()

    assert sha(hosted) == sha(sampled)


def test_save_to_store_url_publishes_through_the_manager():
    data = np.ones((4, 4)) * 3.0
    default_manager().save_matrix("mem://host/in", data)
    src = ("a = load('mem://host/in');\n"
           "b = a + 1;\n"
           "save('mem://host/out', b);\n"
           "disp(sum(sum(b)));\n")
    result = _run(src)
    assert "64" in result.output
    out = default_manager().load_matrix("mem://host/out")
    np.testing.assert_array_equal(out, np.ones((4, 4)) * 4.0)


def test_explicit_store_manager_overrides_the_default():
    private = StoreManager()
    data = np.full((3, 3), 2.0)
    # compile-time sample inference reads the *default* manager;
    # execution then resolves through the run's own manager
    default_manager().save_matrix("mem://iso/x", data)
    private.save_matrix("mem://iso/x", data * 10)
    src = "a = load('mem://iso/x');\ndisp(sum(sum(a)));\n"
    outcome = get_compile_cache().get_or_compile(src, nprocs=2,
                                                 machine=MEIKO_CS2)
    result = outcome.program.run(nprocs=2, machine=MEIKO_CS2, stores=private)
    assert "180" in result.output


def test_missing_hosted_object_is_a_clean_compile_diagnostic():
    from repro.errors import InferenceError

    with pytest.raises(InferenceError) as err:
        _run(LOAD_SRC.format(target="mem://host/absent"))
    assert "sample data file" in str(err.value)


def test_interp_load_resolves_store_urls():
    data = np.arange(4.0).reshape(2, 2)
    default_manager().save_matrix("mem://i/x", data)
    interp = run_source("a = load('mem://i/x');\ndisp(sum(sum(a)));\n")
    assert "6" in "".join(interp.output)
    with pytest.raises(MatlabRuntimeError):
        run_source("a = load('mem://i/absent');\n")


def test_s3_hosted_run_with_injected_client():
    client = FakeS3Client()
    default_manager().register("s3", lambda: S3Store(client=client))
    data = np.full((4, 4), 5.0)
    default_manager().save_matrix("s3://lab/runs/a.dat", data)
    result = _run(LOAD_SRC.format(target="s3://lab/runs/a.dat"), nprocs=2)
    assert "160" in result.output


def test_complex_save_to_store_is_rejected():
    with pytest.raises(MatlabRuntimeError):
        RuntimeContext._render_saved([np.ones((2, 2)) * 1j])
