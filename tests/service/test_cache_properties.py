"""Property-based tests (hypothesis) for the compile-cache key contract.

The contract (docs/SERVICE.md): requests differing in any cache-relevant
component never share a key; requests differing only in layout/comments
always do; an identical repeat is a hit that executes zero compiler
passes and whose run is bit-identical to the cold one.
"""

import hashlib

from hypothesis import given, settings, strategies as st

from repro.mpi.machine import MEIKO_CS2
from repro.service.cache import CompileCache
from repro.trace import canonical_events, pass_report
from repro.tuning.plan import Plan

# a pool of semantically distinct, compilable sources
SOURCES = (
    "x = ones(4, 4) * 2;\ndisp(sum(sum(x)));\n",
    "y = zeros(3, 5) + 1;\ndisp(sum(sum(y)));\n",
    "A = ones(6, 6);\nv = ones(6, 1);\ndisp(sum(A * v));\n",
    "s = 0;\nfor i = 1:5\n  s = s + i;\nend\ndisp(s);\n",
)

components = st.fixed_dictionaries({
    "source": st.sampled_from(range(len(SOURCES))),
    "name": st.sampled_from(("script", "demo", "job")),
    "nprocs": st.sampled_from((1, 2, 4, 8)),
    "backend": st.sampled_from((None, "lockstep", "threads", "fused")),
    "native": st.sampled_from((None, "auto", "off")),
    "plan": st.sampled_from((None, "nofuse", "cyclic")),
})

_PLANS = {"nofuse": Plan(fusion=()), "cyclic": Plan(scheme="cyclic")}


def _key(cache: CompileCache, c: dict) -> str:
    return cache.key(SOURCES[c["source"]], name=c["name"],
                     plan=_PLANS.get(c["plan"]), nprocs=c["nprocs"],
                     machine=MEIKO_CS2, backend=c["backend"],
                     native=c["native"])


@given(a=components, b=components)
@settings(max_examples=150, deadline=None)
def test_distinct_components_never_collide(a, b):
    cache = CompileCache(disk_root=False)
    ka, kb = _key(cache, a), _key(cache, b)
    if a == b:
        assert ka == kb
    else:
        assert ka != kb


# whitespace/comment mutations that must not move the key
def _mutate_layout(source: str, pad: int, comment: bool) -> str:
    lines = source.rstrip("\n").split("\n")
    mutated = []
    for line in lines:
        mutated.append(" " * pad + line.replace(" = ", "  =  "))
        if comment:
            mutated.append("% noise" + "!" * pad)
    return "\n".join(mutated) + "\n" * (1 + pad)


@given(source=st.sampled_from(SOURCES), pad=st.integers(0, 6),
       comment=st.booleans())
@settings(max_examples=60, deadline=None)
def test_layout_mutations_preserve_the_key(source, pad, comment):
    cache = CompileCache(disk_root=False)
    assert cache.key(source) == cache.key(_mutate_layout(source, pad,
                                                         comment))


@given(c=components)
@settings(max_examples=25, deadline=None)
def test_identical_repeat_is_a_hit_with_zero_passes(c):
    cache = CompileCache(disk_root=False)
    kwargs = dict(name=c["name"], plan=_PLANS.get(c["plan"]),
                  nprocs=c["nprocs"], machine=MEIKO_CS2,
                  backend=c["backend"], native=c["native"])
    cold = cache.get_or_compile(SOURCES[c["source"]], **kwargs)
    warm = cache.get_or_compile(SOURCES[c["source"]], **kwargs)
    assert not cold.hit and warm.hit
    assert warm.key == cold.key
    assert warm.passes == []
    assert warm.program is cold.program
    # the pass report of a warm request shows no pass rows at all
    report = pass_report(warm.passes, cache=warm.describe())
    assert "[cache] hit" in report
    assert "parse" not in report and "emit" not in report


@given(source=st.sampled_from(SOURCES[:3]), nprocs=st.sampled_from((1, 2)))
@settings(max_examples=10, deadline=None)
def test_hit_runs_bit_identical_to_miss_runs(source, nprocs):
    cache = CompileCache(disk_root=False)
    cold = cache.get_or_compile(source, nprocs=nprocs, machine=MEIKO_CS2)
    warm = cache.get_or_compile(source, nprocs=nprocs, machine=MEIKO_CS2)
    r_cold = cold.program.run(nprocs=nprocs, machine=MEIKO_CS2, trace=True)
    r_warm = warm.program.run(nprocs=nprocs, machine=MEIKO_CS2, trace=True)
    assert r_warm.output == r_cold.output
    assert r_warm.elapsed == r_cold.elapsed
    sha = lambda r: hashlib.sha256(                      # noqa: E731
        canonical_events(r.trace).encode("utf-8")).hexdigest()
    assert sha(r_warm) == sha(r_cold)
