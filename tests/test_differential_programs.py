"""Differential tests on whole numerical programs — larger, loop-heavy,
and element-access-heavy scripts that stress the guarded-store and
broadcast paths at scale."""

import numpy as np
import pytest

from repro.frontend.mfile import DictProvider

PROGRAMS = {
    "jacobi_solver": """
% Jacobi iteration on a diagonally dominant system.
rand('seed', 21);
n = 24;
A = rand(n, n) + n * eye(n);
b = rand(n, 1);
d = diag(A);
R = A - diag(d);
x = zeros(n, 1);
for k = 1:60
    x = (b - R * x) ./ d;
end
resid = norm(A * x - b);
""",
    "gauss_seidel_elementwise": """
% Gauss-Seidel with explicit element loops (guarded stores + broadcasts).
n = 8;
rand('seed', 22);
A = rand(n, n) + n * eye(n);
b = rand(n, 1);
x = zeros(n, 1);
for sweep = 1:15
    for i = 1:n
        s = 0;
        for j = 1:n
            if j ~= i
                s = s + A(i, j) * x(j);
            end
        end
        x(i) = (b(i) - s) / A(i, i);
    end
end
resid = norm(A * x - b);
""",
    "monte_carlo_pi": """
rand('seed', 23);
n = 20000;
x = rand(n, 1);
y = rand(n, 1);
inside = (x .* x + y .* y) <= 1;
pi_est = 4 * sum(inside) / n;
err = abs(pi_est - pi);
""",
    "logistic_map_ensemble": """
rand('seed', 24);
m = 500;
x = rand(m, 1);
r = 3.7;
for k = 1:100
    x = r * x .* (1 - x);
end
mu = mean(x);
sd = std(x);
""",
    "power_iteration_with_deflation": """
rand('seed', 25);
n = 20;
A = rand(n, n);
A = A' * A;
v1 = ones(n, 1) / sqrt(n);
for k = 1:80
    v1 = A * v1;
    v1 = v1 / norm(v1);
end
lam1 = v1' * A * v1;
B = A - lam1 * (v1 * v1');
v2 = rand(n, 1);
for k = 1:80
    v2 = B * v2;
    v2 = v2 - (v1' * v2) * v1;
    v2 = v2 / norm(v2);
end
lam2 = v2' * A * v2;
gap = lam1 - lam2;
""",
    "histogram_by_element_stores": """
rand('seed', 26);
n = 3000;
bins = 10;
data = rand(n, 1);
h = zeros(1, bins);
for i = 1:n
    k = floor(data(i) * bins) + 1;
    if k > bins
        k = bins;
    end
    h(k) = h(k) + 1;
end
total = sum(h);
hmax = max(h);
""",
    "runge_kutta_oscillator": """
% RK4 for a damped oscillator; purely scalar loop body.
x = 1; v = 0;
dt = 0.05;
w2 = 4.0;
c = 0.1;
for s = 1:200
    k1x = v;                      k1v = -w2 * x - c * v;
    k2x = v + dt/2 * k1v;         k2v = -w2 * (x + dt/2 * k1x) - c * (v + dt/2 * k1v);
    k3x = v + dt/2 * k2v;         k3v = -w2 * (x + dt/2 * k2x) - c * (v + dt/2 * k2v);
    k4x = v + dt * k3v;           k4v = -w2 * (x + dt * k3x) - c * (v + dt * k3v);
    x = x + dt/6 * (k1x + 2*k2x + 2*k3x + k4x);
    v = v + dt/6 * (k1v + 2*k2v + 2*k3v + k4v);
end
energy = w2 * x * x / 2 + v * v / 2;
""",
    "blocked_matrix_assembly": """
% Assemble a block tridiagonal matrix with slice stores.
n = 6;
blocks = 4;
N = n * blocks;
T = zeros(N, N);
D = 4 * eye(n);
E = -1 * eye(n);
for b = 1:blocks
    lo = (b - 1) * n + 1;
    hi = b * n;
    T(lo:hi, lo:hi) = D;
    if b < blocks
        T(lo:hi, lo+n:hi+n) = E;
        T(lo+n:hi+n, lo:hi) = E;
    end
end
sym_err = max(max(abs(T - T')));
row_sum = sum(T(1, :));
""",
    "stencil_heat": """
n = 400;
x = linspace(0, 2*pi, n);
u = sin(x);
alpha = 0.2;
for s = 1:50
    left = circshift(u, 1);
    right = circshift(u, -1);
    u = u + alpha * (left - 2 * u + right);
end
decay = sum(u .* u);
""",
    "fixed_point_while": """
x = 10.0;
iters = 0;
while abs(x - cos(x)) > 1e-10
    x = cos(x);
    iters = iters + 1;
    if iters > 500
        break
    end
end
""",
    "stencil_2d_cross": """
% two-element circshift: [rows cols] shifts reach all four neighbours
% of a distributed matrix without a transpose sandwich
n = 24;
rand('seed', 7);
a = rand(n, n);
sh = [0, 1];
for s = 1:6
    north = circshift(a, [-1, 0]);
    south = circshift(a, [1, 0]);
    west = circshift(a, [0, -1]);
    east = circshift(a, sh);
    diagn = circshift(a, [2, -3]);
    a = (north + south + west + east + diagn) ./ 5;
end
spread = max(max(a)) - min(min(a));
total = sum(sum(a));
""",
}


@pytest.mark.parametrize("key", sorted(PROGRAMS))
def test_program_matches_oracle(key, assert_matches_oracle):
    assert_matches_oracle(PROGRAMS[key], nprocs=(1, 4), rtol=1e-7,
                          atol=1e-9)


def test_jacobi_actually_converges(run_compiled):
    ws, _ = run_compiled(PROGRAMS["jacobi_solver"], nprocs=4)
    assert ws["resid"] < 1e-8


def test_gauss_seidel_converges(run_compiled):
    ws, _ = run_compiled(PROGRAMS["gauss_seidel_elementwise"], nprocs=3)
    assert ws["resid"] < 1e-6


def test_monte_carlo_close_to_pi(run_compiled):
    ws, _ = run_compiled(PROGRAMS["monte_carlo_pi"], nprocs=4)
    assert ws["err"] < 0.05


def test_power_iteration_orders_eigenvalues(run_compiled):
    ws, _ = run_compiled(PROGRAMS["power_iteration_with_deflation"],
                         nprocs=2)
    assert ws["gap"] > 0


MFILE_PROGRAMS = {
    "newton_solver": ("""
root = newton(2.0, 40);
check = root * root - 2;
""", {
        "newton": """function x = newton(x0, iters)
x = x0;
for k = 1:iters
    fx = x * x - 2;
    if abs(fx) < 1e-14
        return
    end
    x = x - fx / (2 * x);
end
""",
    }),
    "matrix_exponential_series": ("""
rand('seed', 27);
A = rand(6, 6) / 10;
E = expm_series(A, 12);
check = max(max(abs(E * inv(E) - eye(6))));
""", {
        "expm_series": """function E = expm_series(A, terms)
n = size(A, 1);
E = eye(n);
T = eye(n);
for k = 1:terms
    T = (T * A) / k;
    E = E + T;
end
""",
    }),
}


@pytest.mark.parametrize("key", sorted(MFILE_PROGRAMS))
def test_mfile_program_matches_oracle(key, assert_matches_oracle):
    src, mfiles = MFILE_PROGRAMS[key]
    assert_matches_oracle(src, nprocs=(1, 3),
                          provider=DictProvider(mfiles),
                          rtol=1e-7, atol=1e-9)


COMPLEX_PROGRAMS = {
    "phasor_rotation": """
n = 16;
theta = 2 * pi / n;
w = cos(theta) + sin(theta) * 1i;
z = ones(n, 1) + 0i;
for k = 1:n
    z = z * w;
end
err = max(abs(z - 1));
""",
    "complex_matvec_energy": """
rand('seed', 33);
n = 12;
Ar = rand(n, n);
Ai = rand(n, n);
A = Ar + 1i * Ai;
v = rand(n, 1) + 1i * rand(n, 1);
w = A * v;
energy = real(v' * v);
cross = v' * w;
mag = abs(cross);
""",
    "complex_conjugate_identities": """
z = 3 - 4i;
a = z * conj(z);
b = abs(z) ^ 2;
diff = abs(a - b);
re2 = real(z ^ 2);
im2 = imag(z ^ 2);
""",
    "dft_by_matrix": """
% Direct DFT of a small real signal via an explicit Fourier matrix.
n = 8;
x = [1; 2; 3; 4; 4; 3; 2; 1];
F = zeros(n, n) + 0i;
for r = 1:n
    for c = 1:n
        ang = -2 * pi * (r - 1) * (c - 1) / n;
        F(r, c) = cos(ang) + 1i * sin(ang);
    end
end
X = F * x;
dc = real(X(1));
power = real(X' * X) / n;
parseval = abs(power - x' * x);
""",
}


@pytest.mark.parametrize("key", sorted(COMPLEX_PROGRAMS))
def test_complex_program_matches_oracle(key, assert_matches_oracle):
    assert_matches_oracle(COMPLEX_PROGRAMS[key], nprocs=(1, 3),
                          rtol=1e-9, atol=1e-11)


def test_phasor_returns_to_start(run_compiled):
    ws, _ = run_compiled(COMPLEX_PROGRAMS["phasor_rotation"], nprocs=2)
    assert ws["err"] < 1e-12


def test_parseval_holds(run_compiled):
    ws, _ = run_compiled(COMPLEX_PROGRAMS["dft_by_matrix"], nprocs=4)
    assert ws["parseval"] < 1e-9
