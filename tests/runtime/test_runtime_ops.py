"""Distributed run-time library vs numpy oracle, across rank counts."""

import numpy as np
import pytest

from repro.interp.values import COLON
from repro.mpi import MEIKO_CS2, run_spmd
from repro.runtime.context import RuntimeContext
from repro.runtime.matrix import DMatrix

PS = [1, 2, 4, 7]


def run_op(fn, p=4, scheme="block", seed=1):
    """Run fn(rt) on p ranks; return rank 0's (replicated) result."""

    def rank_main(comm):
        rt = RuntimeContext(comm, seed=seed, scheme=scheme)
        out = fn(rt)
        return rt.to_interp_value(out) if isinstance(out, DMatrix) else out

    res = run_spmd(p, MEIKO_CS2, rank_main)
    first = res.results[0]
    for other in res.results[1:]:
        if isinstance(first, np.ndarray):
            np.testing.assert_allclose(other, first)
        elif isinstance(first, tuple):
            pass
        else:
            assert other == first or (first != first and other != other)
    return first


def oracle_rand(shape, seed=1):
    return np.random.default_rng(seed).random(shape)


class TestCreation:
    @pytest.mark.parametrize("p", PS)
    def test_rand_matches_oracle(self, p):
        got = run_op(lambda rt: rt.rand(6.0, 5.0), p=p)
        np.testing.assert_array_equal(got, oracle_rand((6, 5)))

    def test_zeros_ones_eye(self):
        assert run_op(lambda rt: rt.call_builtin(
            "sum", [rt.call_builtin("sum", [rt.ones(4.0, 5.0)])])) == 20.0
        eye_sum = run_op(lambda rt: rt.call_builtin(
            "sum", [rt.call_builtin("sum", [rt.eye(7.0, 7.0)])]))
        assert eye_sum == 7.0

    def test_range_vector(self):
        got = run_op(lambda rt: rt.range_vector(1.0, 2.0, 9.0))
        np.testing.assert_array_equal(got, [[1, 3, 5, 7, 9]])

    def test_literal_with_distributed_blocks(self):
        def fn(rt):
            a = rt.ones(2.0, 2.0)
            return rt.from_literal([[a, a], [a, a]])

        got = run_op(fn)
        np.testing.assert_array_equal(got, np.ones((4, 4)))

    def test_linspace(self):
        got = run_op(lambda rt: rt.linspace(0.0, 1.0, 5.0))
        np.testing.assert_allclose(got, [[0, 0.25, 0.5, 0.75, 1.0]])


class TestElementAccess:
    @pytest.mark.parametrize("p", PS)
    def test_broadcast_element(self, p):
        def fn(rt):
            a = rt.rand(6.0, 6.0)
            return rt.element(a, 3, 4)

        assert run_op(fn, p=p) == oracle_rand((6, 6))[3, 4]

    def test_linear_element_column_major(self):
        def fn(rt):
            a = rt.rand(4.0, 3.0)
            return rt.element(a, 5)  # 0-based linear 5 -> (1, 1)

        assert run_op(fn) == oracle_rand((4, 3))[1, 1]

    @pytest.mark.parametrize("p", PS)
    def test_set_element_guarded(self, p):
        def fn(rt):
            a = rt.zeros(5.0, 5.0)
            a = rt.set_element(a, [2.0, 3.0], 7.5)
            return a

        got = run_op(fn, p=p)
        assert got[1, 2] == 7.5 and got.sum() == 7.5

    def test_set_element_out_of_bounds_grows(self):
        def fn(rt):
            a = rt.zeros(2.0, 2.0)
            return rt.set_element(a, [4.0, 4.0], 1.0)

        got = run_op(fn)
        assert got.shape == (4, 4) and got[3, 3] == 1.0

    def test_owner_unique(self):
        def fn(rt):
            a = rt.rand(8.0, 3.0)
            owners = [rt.owner(a, i, 0) for i in range(8)]
            total = rt.comm.allreduce(float(sum(owners)))
            return total

        # across all ranks, each element has exactly one owner
        assert run_op(fn, p=4) == 8.0


class TestIndexing:
    def test_slice_read(self):
        def fn(rt):
            a = rt.rand(6.0, 6.0)
            return rt.index_read(a, [COLON, 2.0])

        np.testing.assert_array_equal(
            run_op(fn), oracle_rand((6, 6))[:, 1:2])

    def test_range_subscript_read(self):
        def fn(rt):
            a = rt.rand(8.0, 8.0)
            rows = rt.range_vector(2.0, 1.0, 4.0)
            return rt.index_read(a, [rows, COLON])

        np.testing.assert_array_equal(
            run_op(fn), oracle_rand((8, 8))[1:4, :])

    def test_index_assign_block(self):
        def fn(rt):
            a = rt.zeros(4.0, 4.0)
            return rt.index_assign(a, [COLON, 2.0], rt.ones(4.0, 1.0))

        got = run_op(fn)
        np.testing.assert_array_equal(got[:, 1], np.ones(4))


class TestLinalg:
    @pytest.mark.parametrize("p", PS)
    def test_matmat(self, p):
        def fn(rt):
            a = rt.rand(7.0, 5.0)
            b = rt.rand(5.0, 6.0)
            return rt.matmul(a, b)

        rng = np.random.default_rng(1)
        a, b = rng.random((7, 5)), rng.random((5, 6))
        np.testing.assert_allclose(run_op(fn, p=p), a @ b)

    @pytest.mark.parametrize("p", PS)
    def test_matvec(self, p):
        def fn(rt):
            a = rt.rand(9.0, 9.0)
            x = rt.rand(9.0, 1.0)
            return rt.matmul(a, x)

        rng = np.random.default_rng(1)
        a, x = rng.random((9, 9)), rng.random((9, 1))
        np.testing.assert_allclose(run_op(fn, p=p), a @ x)

    @pytest.mark.parametrize("p", PS)
    def test_dot(self, p):
        def fn(rt):
            u = rt.rand(11.0, 1.0)
            return rt.matmul(rt.transpose(u), u)

        rng = np.random.default_rng(1)
        u = rng.random((11, 1))
        assert abs(run_op(fn, p=p) - float((u.T @ u)[0, 0])) < 1e-10

    def test_matmul_t_fused_equals_unfused(self):
        def fused(rt):
            a = rt.rand(8.0, 6.0)
            b = rt.rand(8.0, 4.0)
            return rt.matmul_t(a, b)

        def unfused(rt):
            a = rt.rand(8.0, 6.0)
            b = rt.rand(8.0, 4.0)
            return rt.matmul(rt.transpose(a), b)

        np.testing.assert_allclose(run_op(fused), run_op(unfused))

    def test_vecmat(self):
        def fn(rt):
            x = rt.rand(1.0, 6.0)
            a = rt.rand(6.0, 5.0)
            return rt.matmul(x, a)

        rng = np.random.default_rng(1)
        x, a = rng.random((1, 6)), rng.random((6, 5))
        np.testing.assert_allclose(run_op(fn), x @ a)

    def test_outer(self):
        def fn(rt):
            u = rt.rand(5.0, 1.0)
            v = rt.rand(1.0, 7.0)
            return rt.matmul(u, v)

        rng = np.random.default_rng(1)
        u, v = rng.random((5, 1)), rng.random((1, 7))
        np.testing.assert_allclose(run_op(fn), u @ v)

    def test_transpose_matrix(self):
        got = run_op(lambda rt: rt.transpose(rt.rand(4.0, 7.0)))
        np.testing.assert_array_equal(got, oracle_rand((4, 7)).T)

    def test_vector_transpose_roundtrip(self):
        def fn(rt):
            v = rt.rand(9.0, 1.0)
            return rt.transpose(rt.transpose(v))

        np.testing.assert_array_equal(run_op(fn), oracle_rand((9, 1)))

    def test_solve(self):
        def fn(rt):
            a = rt.ew(lambda x, e: x + 10.0 * e, 1,
          rt.rand(6.0, 6.0), rt.eye(6.0, 6.0))
            b = rt.rand(6.0, 1.0)
            return rt.solve(a, b, left=True)

        rng = np.random.default_rng(1)
        a = rng.random((6, 6)) + 10 * np.eye(6)
        b = rng.random((6, 1))
        np.testing.assert_allclose(run_op(fn), np.linalg.solve(a, b))

    def test_matrix_power(self):
        def fn(rt):
            a = rt.rand(5.0, 5.0)
            return rt.matrix_power(a, 3.0)

        a = oracle_rand((5, 5))
        np.testing.assert_allclose(run_op(fn), a @ a @ a)


class TestReductionsDistributed:
    @pytest.mark.parametrize("name,np_fn", [
        ("sum", np.sum), ("prod", np.prod),
        ("max", np.max), ("min", np.min), ("mean", np.mean)])
    def test_vector_reduction(self, name, np_fn):
        def fn(rt):
            v = rt.rand(13.0, 1.0)
            return rt.call_builtin(name, [v])

        v = oracle_rand((13, 1)).reshape(-1)
        assert abs(run_op(fn) - np_fn(v)) < 1e-10

    def test_matrix_reduction_columnwise(self):
        def fn(rt):
            a = rt.rand(6.0, 4.0)
            return rt.call_builtin("sum", [a])

        np.testing.assert_allclose(run_op(fn),
                                   oracle_rand((6, 4)).sum(0).reshape(1, -1))

    def test_minmax_with_index(self):
        def fn(rt):
            v = rt.rand(17.0, 1.0)
            return rt.call_builtin("max", [v], nargout=2)

        got = run_op(fn)
        v = oracle_rand((17, 1)).reshape(-1)
        assert got[0] == v.max()
        assert got[1] == float(np.argmax(v) + 1)

    def test_norm(self):
        def fn(rt):
            v = rt.rand(10.0, 1.0)
            return rt.call_builtin("norm", [v])

        v = oracle_rand((10, 1)).reshape(-1)
        assert abs(run_op(fn) - np.linalg.norm(v)) < 1e-10

    def test_trapz_uniform(self):
        def fn(rt):
            v = rt.rand(1.0, 20.0)
            return rt.call_builtin("trapz", [v])

        v = oracle_rand((1, 20)).reshape(-1)
        assert abs(run_op(fn) - np.trapezoid(v)) < 1e-10

    def test_trapz_nonuniform(self):
        def fn(rt):
            x = rt.range_vector(0.0, 1.0, 9.0)
            y = rt.ew(lambda a: a * a, 1, x)
            return rt.call_builtin("trapz", [x, y])

        x = np.arange(10.0)
        assert abs(run_op(fn) - np.trapezoid(x * x, x)) < 1e-10

    def test_trapz2(self):
        def fn(rt):
            z = rt.rand(8.0, 9.0)
            return rt.call_builtin("trapz2", [z, 0.5, 0.25])

        z = oracle_rand((8, 9))
        want = np.trapezoid(np.trapezoid(z, dx=0.25, axis=1), dx=0.5)
        assert abs(run_op(fn) - want) < 1e-10

    @pytest.mark.parametrize("p", PS)
    def test_cumsum_vector(self, p):
        def fn(rt):
            v = rt.rand(15.0, 1.0)
            return rt.call_builtin("cumsum", [v])

        v = oracle_rand((15, 1)).reshape(-1)
        np.testing.assert_allclose(
            np.asarray(run_op(fn, p=p)).reshape(-1), np.cumsum(v))

    def test_all_any(self):
        def fn(rt):
            v = rt.ones(9.0, 1.0)
            return (rt.call_builtin("all", [v]),
                    rt.call_builtin("any", [rt.zeros(9.0, 1.0)]))

        got = run_op(fn)
        assert got == (1.0, 0.0)


class TestStructural:
    @pytest.mark.parametrize("k", [0, 1, -2, 5, 23])
    def test_circshift_vector(self, k):
        def fn(rt):
            v = rt.range_vector(1.0, 1.0, 11.0)
            return rt.circshift(v, float(k))

        got = np.asarray(run_op(fn)).reshape(-1)
        np.testing.assert_array_equal(got, np.roll(np.arange(1.0, 12.0), k))

    @pytest.mark.parametrize("p", PS)
    @pytest.mark.parametrize("kr,kc", [(0, 1), (0, -3), (1, 0), (2, -1),
                                       (-1, 2), (0, 0), (7, 9)])
    def test_circshift_two_element(self, p, kr, kc):
        def fn(rt):
            a = rt.rand(7.0, 5.0)
            shift = rt.distribute_full(np.array([[float(kr), float(kc)]]))
            return rt.circshift(a, shift)

        got = run_op(fn, p=p)
        want = np.roll(oracle_rand((7, 5)), (kr, kc), axis=(0, 1))
        np.testing.assert_array_equal(np.asarray(got).reshape(want.shape),
                                      want)

    @pytest.mark.parametrize("shape", [(1.0, 9.0), (9.0, 1.0)])
    def test_circshift_two_element_vector(self, shape):
        def fn(rt):
            v = rt.rand(*shape)
            shift = rt.distribute_full(np.array([[2.0, 2.0]]))
            return rt.circshift(v, shift)

        got = np.asarray(run_op(fn)).reshape(-1)
        want = np.roll(oracle_rand(tuple(int(s) for s in shape)).reshape(-1),
                       2)
        np.testing.assert_array_equal(got, want)

    def test_circshift_bad_shift_rejected(self):
        def fn(rt):
            a = rt.rand(4.0, 4.0)
            shift = rt.distribute_full(np.array([[1.0, 2.0, 3.0]]))
            return rt.circshift(a, shift)

        # run_spmd wraps the rank's MatlabRuntimeError
        with pytest.raises(Exception, match="two-element"):
            run_op(fn, p=1)

    def test_sort_sample_sort(self):
        def fn(rt):
            v = rt.rand(1.0, 40.0)
            return rt.sort(v)

        got = np.asarray(run_op(fn, p=4)).reshape(-1)
        np.testing.assert_allclose(got,
                                   np.sort(oracle_rand((1, 40)).reshape(-1)))

    def test_tril_triu_local(self):
        def fn(rt):
            a = rt.rand(7.0, 7.0)
            return rt.call_builtin("tril", [a])

        np.testing.assert_array_equal(run_op(fn), np.tril(oracle_rand((7, 7))))

    def test_reshape_column_major(self):
        def fn(rt):
            a = rt.rand(4.0, 6.0)
            return rt.call_builtin("reshape", [a, 6.0, 4.0])

        np.testing.assert_array_equal(
            run_op(fn), oracle_rand((4, 6)).reshape((6, 4), order="F"))

    def test_diag_of_matrix(self):
        def fn(rt):
            a = rt.rand(6.0, 6.0)
            return rt.call_builtin("diag", [a])

        np.testing.assert_array_equal(
            np.asarray(run_op(fn)).reshape(-1), np.diag(oracle_rand((6, 6))))

    def test_fliplr_matrix(self):
        def fn(rt):
            a = rt.rand(5.0, 8.0)
            return rt.call_builtin("fliplr", [a])

        np.testing.assert_array_equal(run_op(fn),
                                      np.fliplr(oracle_rand((5, 8))))


class TestCyclicScheme:
    """The ablation distribution: same results, different layout."""

    @pytest.mark.parametrize("p", [1, 3, 4])
    def test_matvec_cyclic(self, p):
        def fn(rt):
            a = rt.rand(9.0, 9.0)
            x = rt.rand(9.0, 1.0)
            return rt.matmul(a, x)

        rng = np.random.default_rng(1)
        a, x = rng.random((9, 9)), rng.random((9, 1))
        np.testing.assert_allclose(run_op(fn, p=p, scheme="cyclic"), a @ x)

    def test_reduction_cyclic(self):
        def fn(rt):
            v = rt.rand(14.0, 1.0)
            return rt.call_builtin("sum", [v])

        v = oracle_rand((14, 1))
        assert abs(run_op(fn, p=4, scheme="cyclic") - v.sum()) < 1e-10


class TestTruthyAndLoops:
    def test_truthy_distributed(self):
        assert run_op(lambda rt: rt.truthy(rt.ones(5.0, 5.0))) is True
        def has_zero(rt):
            a = rt.set_element(rt.ones(5.0, 5.0), [2.0, 2.0], 0.0)
            return rt.truthy(a)

        assert run_op(has_zero) is False

    def test_loop_range_replicated(self):
        def fn(rt):
            return sum(rt.loop_range(1.0, 2.0, 9.0))

        assert run_op(fn) == 25.0  # 1+3+5+7+9

    def test_loop_values_over_matrix(self):
        def fn(rt):
            a = rt.rand(4.0, 3.0)
            total = 0.0
            for col in rt.loop_values(a):
                total += rt.call_builtin("sum", [col])
            return total

        assert abs(run_op(fn) - oracle_rand((4, 3)).sum()) < 1e-10
