"""Reduction edge cases with degenerate local blocks (ranks owning no
rows) and mixed shapes."""

import numpy as np
import pytest

from repro.mpi import MEIKO_CS2, run_spmd
from repro.runtime.context import RuntimeContext
from repro.runtime.matrix import DMatrix


def run_op(fn, p=4, seed=2):
    def rank_main(comm):
        rt = RuntimeContext(comm, seed=seed)
        out = fn(rt)
        return rt.to_interp_value(out) if isinstance(out, DMatrix) else out

    return run_spmd(p, MEIKO_CS2, rank_main).results[0]


def oracle(shape, seed=2):
    return np.random.default_rng(seed).random(shape)


class TestEmptyLocalBlocks:
    """A 3-row matrix over 5 ranks leaves two ranks with nothing."""

    def test_column_sum(self):
        got = run_op(lambda rt: rt.call_builtin(
            "sum", [rt.rand(3.0, 6.0)]), p=5)
        np.testing.assert_allclose(got, oracle((3, 6)).sum(0).reshape(1, -1))

    def test_column_max(self):
        got = run_op(lambda rt: rt.call_builtin(
            "max", [rt.rand(3.0, 6.0)]), p=5)
        np.testing.assert_allclose(got, oracle((3, 6)).max(0).reshape(1, -1))

    def test_column_prod_identity_on_empty(self):
        got = run_op(lambda rt: rt.call_builtin(
            "prod", [rt.rand(2.0, 4.0)]), p=5)
        np.testing.assert_allclose(got, oracle((2, 4)).prod(0).reshape(1, -1))

    def test_vector_minmax_with_index(self):
        def fn(rt):
            v = rt.rand(3.0, 1.0)
            return rt.call_builtin("min", [v], nargout=2)

        value, index = run_op(fn, p=5)
        v = oracle((3, 1)).reshape(-1)
        assert value == v.min()
        assert index == float(np.argmin(v) + 1)

    def test_row_reduce_with_empty_ranks(self):
        def fn(rt):
            a = rt.rand(3.0, 4.0)
            return rt.call_builtin("sum", [a, 2.0])

        got = np.asarray(run_op(fn, p=5)).reshape(-1)
        np.testing.assert_allclose(got, oracle((3, 4)).sum(1))

    def test_cumsum_vector_with_empty_ranks(self):
        def fn(rt):
            v = rt.rand(3.0, 1.0)
            return rt.call_builtin("cumsum", [v])

        got = np.asarray(run_op(fn, p=5)).reshape(-1)
        np.testing.assert_allclose(got, np.cumsum(oracle((3, 1)).reshape(-1)))

    def test_find_with_empty_ranks(self):
        def fn(rt):
            v = rt.ones(3.0, 1.0)
            return rt.call_builtin("find", [v])

        got = np.asarray(run_op(fn, p=5)).reshape(-1)
        np.testing.assert_array_equal(got, [1, 2, 3])


class TestMixedReductions:
    def test_std_of_constant_vector_is_zero(self):
        got = run_op(lambda rt: rt.call_builtin("std", [rt.ones(9.0, 1.0)]))
        assert got == 0.0

    def test_var_two_elements(self):
        def fn(rt):
            v = rt.from_literal([[1.0], [3.0]])
            return rt.call_builtin("var", [v])

        assert run_op(fn, p=2) == 2.0  # ((1-2)^2 + (3-2)^2) / (2-1)

    def test_median_distributed_even(self):
        def fn(rt):
            v = rt.rand(12.0, 1.0)
            return rt.call_builtin("median", [v])

        v = np.sort(oracle((12, 1)).reshape(-1))
        assert run_op(fn, p=4) == pytest.approx((v[5] + v[6]) / 2)

    def test_norm_complex_vector(self):
        def fn(rt):
            re = rt.rand(7.0, 1.0)
            im = rt.rand(7.0, 1.0)
            z = rt.ew(lambda a, b: a + 1j * b, 1, re, im)
            return rt.call_builtin("norm", [z])

        rng = np.random.default_rng(2)
        z = rng.random((7, 1)) + 1j * rng.random((7, 1))
        assert run_op(fn, p=3) == pytest.approx(np.linalg.norm(z))

    def test_trapz_matrix_columns_distributed(self):
        def fn(rt):
            a = rt.rand(9.0, 3.0)
            return rt.call_builtin("trapz", [a])

        got = np.asarray(run_op(fn, p=4)).reshape(-1)
        np.testing.assert_allclose(
            got, np.trapezoid(oracle((9, 3)), axis=0))
