"""Distribution-map tests (plus hypothesis properties)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import DistributionError
from repro.runtime.distribution import BlockMap, CyclicMap


class TestBlockMap:
    def test_even_split(self):
        m = BlockMap(8, 4)
        assert m.counts() == [2, 2, 2, 2]
        assert m.starts() == [0, 2, 4, 6]

    def test_remainder_to_first_ranks(self):
        m = BlockMap(10, 4)
        assert m.counts() == [3, 3, 2, 2]

    def test_more_ranks_than_items(self):
        m = BlockMap(2, 5)
        assert m.counts() == [1, 1, 0, 0, 0]

    def test_owner_matches_ranges(self):
        m = BlockMap(10, 3)
        for i in range(10):
            r = m.owner(i)
            assert m.start(r) <= i < m.stop(r)

    def test_local_index(self):
        m = BlockMap(10, 3)
        assert m.local_index(0) == 0
        assert m.local_index(4) == 0  # first item of rank 1 (counts 4,3,3)

    def test_out_of_range(self):
        with pytest.raises(DistributionError):
            BlockMap(5, 2).owner(5)
        with pytest.raises(DistributionError):
            BlockMap(5, 2).owner(-1)


class TestCyclicMap:
    def test_round_robin_owner(self):
        m = CyclicMap(10, 3)
        assert [m.owner(i) for i in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_counts(self):
        m = CyclicMap(10, 3)
        assert m.counts() == [4, 3, 3]

    def test_global_indices(self):
        m = CyclicMap(10, 3)
        np.testing.assert_array_equal(m.global_indices(1), [1, 4, 7])

    def test_local_index(self):
        m = CyclicMap(10, 3)
        assert m.local_index(7) == 2


@given(n=st.integers(0, 500), p=st.integers(1, 17))
def test_block_partition_covers_exactly(n, p):
    """Partition property: counts sum to n, blocks are contiguous and
    disjoint, sizes differ by at most one."""
    m = BlockMap(n, p)
    counts = m.counts()
    assert sum(counts) == n
    assert max(counts) - min(counts) <= 1
    seen = []
    for r in range(p):
        seen.extend(range(m.start(r), m.stop(r)))
    assert seen == list(range(n))


@given(n=st.integers(1, 300), p=st.integers(1, 9))
def test_block_owner_local_roundtrip(n, p):
    m = BlockMap(n, p)
    for i in range(0, n, max(n // 7, 1)):
        r = m.owner(i)
        assert m.start(r) + m.local_index(i) == i


@given(n=st.integers(0, 300), p=st.integers(1, 9))
def test_cyclic_partition_covers_exactly(n, p):
    m = CyclicMap(n, p)
    assert sum(m.counts()) == n
    all_indices = np.concatenate(
        [m.global_indices(r) for r in range(p)]) if n else np.array([])
    assert sorted(all_indices.tolist()) == list(range(n))


@given(n=st.integers(1, 200), p=st.integers(1, 8))
def test_cyclic_owner_consistent_with_indices(n, p):
    m = CyclicMap(n, p)
    for r in range(p):
        for i in m.global_indices(r):
            assert m.owner(int(i)) == r


@pytest.mark.parametrize("cls", [BlockMap, CyclicMap])
@given(n=st.integers(1, 400), p=st.integers(1, 23))
def test_vectorized_owners_match_scalar(cls, n, p):
    """owners()/local_indices() agree element-wise with owner()/
    local_index() — including base == 0 (more ranks than elements)."""
    m = cls(n, p)
    idx = np.arange(n)
    np.testing.assert_array_equal(
        m.owners(idx), [m.owner(i) for i in range(n)])
    np.testing.assert_array_equal(
        m.local_indices(idx), [m.local_index(i) for i in range(n)])


@pytest.mark.parametrize("cls", [BlockMap, CyclicMap])
def test_vectorized_owners_more_ranks_than_elements(cls):
    """The base == 0 edge explicitly: every element fits in the first
    extra-sized blocks (block) or the first ranks (cyclic)."""
    m = cls(3, 8)
    idx = np.arange(3)
    np.testing.assert_array_equal(
        m.owners(idx), [m.owner(i) for i in range(3)])
    np.testing.assert_array_equal(
        m.local_indices(idx), [m.local_index(i) for i in range(3)])


@pytest.mark.parametrize("cls", [BlockMap, CyclicMap])
def test_vectorized_owners_out_of_range(cls):
    m = cls(5, 2)
    with pytest.raises(DistributionError):
        m.owners(np.array([0, 5]))
    with pytest.raises(DistributionError):
        m.owners(np.array([-1, 2]))


@pytest.mark.parametrize("cls", [BlockMap, CyclicMap])
def test_vectorized_owners_empty(cls):
    m = cls(5, 2)
    assert m.owners(np.array([], dtype=int)).size == 0
    assert m.local_indices(np.array([], dtype=int)).size == 0
