"""Per-rank memory-tracking tests (the Section 7 instrumentation)."""

import gc

import numpy as np
import pytest

from repro.compiler import compile_source
from repro.mpi import MEIKO_CS2, run_spmd
from repro.runtime.context import RuntimeContext
from repro.runtime.memory import MemoryTracker, install_tracker


class TestTracker:
    def test_peak_tracks_high_water(self):
        t = MemoryTracker()
        t.allocate(100)
        t.allocate(50)
        t.release(100)
        t.allocate(20)
        assert t.current == 70
        assert t.peak == 150

    def test_reset(self):
        t = MemoryTracker()
        t.allocate(10)
        t.reset()
        assert t.current == 0 and t.peak == 0


class TestRankTracking:
    def test_local_bytes_counted(self):
        def fn(comm):
            rt = RuntimeContext(comm, seed=0)
            a = rt.rand(100.0, 100.0)
            return rt.peak_local_bytes

        res = run_spmd(4, MEIKO_CS2, fn)
        # each rank holds 25 rows x 100 cols x 8 bytes
        assert all(p >= 25 * 100 * 8 for p in res.results)
        assert all(p < 100 * 100 * 8 for p in res.results)

    def test_garbage_collection_releases(self):
        def fn(comm):
            rt = RuntimeContext(comm, seed=0)
            for _ in range(5):
                a = rt.rand(64.0, 64.0)
                del a
                gc.collect()
            current = rt.memory.current
            peak = rt.peak_local_bytes
            return current, peak

        res = run_spmd(2, MEIKO_CS2, fn)
        for current, peak in res.results:
            # peak covers roughly one live matrix, not five
            assert peak < 3 * 64 * 64 * 8
            assert current <= peak

    def test_trackers_isolated_per_rank(self):
        def fn(comm):
            rt = RuntimeContext(comm, seed=0)
            if comm.rank == 0:
                rt.rand(200.0, 200.0)  # only rank 0 allocates extra
            comm.barrier()
            return rt.peak_local_bytes

        res = run_spmd(2, MEIKO_CS2, fn)
        assert res.results[0] > res.results[1]

    def test_main_thread_tracker_restorable(self):
        tracker = MemoryTracker()
        install_tracker(tracker)
        try:
            from repro.runtime.matrix import DMatrix

            DMatrix.from_full(np.ones((10, 10)), 1, 0)
            assert tracker.peak == 800
        finally:
            install_tracker(None)


class TestRunResultMemory:
    def test_peaks_reported_per_rank(self):
        prog = compile_source("rand('seed', 1);\na = rand(64, 64);"
                              "\ns = sum(sum(a));")
        result = prog.run(nprocs=4)
        assert len(result.peak_local_bytes) == 4
        assert all(p > 0 for p in result.peak_local_bytes)

    def test_memory_shrinks_with_ranks(self):
        prog = compile_source("rand('seed', 1);\na = rand(256, 256);"
                              "\nb = a + a;\ns = sum(sum(b));")
        p1 = max(prog.run(nprocs=1).peak_local_bytes)
        p8 = max(prog.run(nprocs=8).peak_local_bytes)
        assert p8 < p1 / 4

    def test_machine_memory_constants(self):
        from repro.mpi import (
            MEIKO_CS2,
            SPARC20_CLUSTER,
            SUN_ENTERPRISE,
            WORKSTATION_MEMORY,
        )

        for machine in (MEIKO_CS2, SUN_ENTERPRISE, SPARC20_CLUSTER):
            assert machine.memory_per_cpu > 0
        # the aggregate parallel memory beats one workstation (Section 7)
        assert (MEIKO_CS2.memory_per_cpu * MEIKO_CS2.max_cpus
                > WORKSTATION_MEMORY * 4)


class TestGatherCache:
    def test_cached_gather_skips_collectives(self):
        from repro.mpi import MEIKO_CS2, run_spmd
        from repro.runtime.context import RuntimeContext

        def fn(comm):
            rt = RuntimeContext(comm, seed=0, cache_gathers=True)
            a = rt.rand(12.0, 12.0)
            first = rt.gather_full(a)
            before = comm.world.collectives
            second = rt.gather_full(a)
            after = comm.world.collectives
            return (first == second).all(), after - before

        res = run_spmd(3, MEIKO_CS2, fn)
        for same, extra in res.results:
            assert same and extra == 0

    def test_cache_disabled_by_default(self):
        from repro.mpi import MEIKO_CS2, run_spmd
        from repro.runtime.context import RuntimeContext

        def fn(comm):
            rt = RuntimeContext(comm, seed=0)
            a = rt.rand(12.0, 12.0)
            rt.gather_full(a)
            before = comm.world.collectives
            rt.gather_full(a)
            return comm.world.collectives - before

        res = run_spmd(3, MEIKO_CS2, fn)
        assert all(extra >= 1 for extra in res.results)

    def test_new_value_not_served_stale(self):
        from repro.mpi import MEIKO_CS2, run_spmd
        from repro.runtime.context import RuntimeContext

        def fn(comm):
            rt = RuntimeContext(comm, seed=0, cache_gathers=True)
            a = rt.rand(8.0, 8.0)
            rt.gather_full(a)
            b = rt.ew(lambda x: x + 1.0, 1, a)  # a NEW descriptor
            full_b = rt.gather_full(b)
            full_a = rt.gather_full(a)
            return float((full_b - full_a).sum())

        res = run_spmd(2, MEIKO_CS2, fn)
        assert all(abs(v - 64.0) < 1e-9 for v in res.results)
