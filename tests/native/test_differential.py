"""Hypothesis differential suite: random elementwise op trees executed
by the native tier must be bitwise identical to the numpy reference —
or fall back (return ``None``), never silently diverge.

Bit-identity is modulo NaN representation: compilers may fold
``x + (-y)`` into ``x - y``, which propagates a NaN operand without the
sign flip numpy's separate negate performs.  NaN sign/payload bits are
unspecified by IEEE-754 and not part of the tier's contract (the
first-call verify gate still compares strict bytes and conservatively
falls back on such chains); value positions and all non-NaN bits must
match exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.native import get_engine
from repro.native.ops import EXACT, OPS, spec_reference

engine = get_engine()

pytestmark = pytest.mark.skipif(
    not engine.available,
    reason="no C compiler / cffi: native tier unavailable")

#: EXACT ops with no semantic guard: a kernel can never abort mid-loop
SAFE_OPS = sorted(op for op, info in OPS.items()
                  if info.kind == EXACT and info.guard is None)
ALL_OPS = sorted(op for op in OPS if not op.startswith("pow:"))

SPECIALS = [0.0, -0.0, 1.0, -1.0, np.inf, -np.inf, np.nan,
            1e308, -1e308, 5e-324, 0.5, 2.0, np.pi]

elements = st.one_of(
    st.sampled_from(SPECIALS),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)

NSLOTS = 3


@st.composite
def spec_trees(draw, ops, max_depth=3):
    """A random op tree over ``@0..@{NSLOTS-1}`` slots and float
    constants, rooted at an operator and guaranteed to use slot 0."""

    def node(depth):
        if depth >= max_depth or draw(st.integers(0, 2)) == 0:
            if draw(st.booleans()):
                return f"@{draw(st.integers(0, NSLOTS - 1))}"
            return draw(st.floats(min_value=-100, max_value=100,
                                  allow_nan=False))
        op = draw(st.sampled_from(ops))
        return (op, *(node(depth + 1) for _ in range(OPS[op].arity)))

    op = draw(st.sampled_from(ops))
    tree = (op, *(node(1) for _ in range(OPS[op].arity)))
    if "@0" not in repr(tree):
        tree = ("+", "@0", tree)
    return tree


@st.composite
def operand_lists(draw):
    """NSLOTS operands: slot 0 is always an array; the rest may be
    arrays of the same shape or Python floats.  Size >= 2 because a
    size-1 array demotes to a scalar argument and a chain with no array
    operands never reaches the tier."""
    n = draw(st.integers(min_value=2, max_value=7))
    out = [np.ascontiguousarray(
        draw(st.lists(elements, min_size=n, max_size=n)))]
    for _ in range(NSLOTS - 1):
        if draw(st.booleans()):
            out.append(np.ascontiguousarray(
                draw(st.lists(elements, min_size=n, max_size=n))))
        else:
            out.append(draw(elements))
    return out


def _bits_match(out, ref):
    if out.tobytes() == ref.tobytes():
        return True
    if out.shape != ref.shape:
        return False
    nan_both = np.isnan(out) & np.isnan(ref)
    same = np.ascontiguousarray(out).view(np.uint64) == \
        np.ascontiguousarray(ref).view(np.uint64)
    return bool(np.all(nan_both | same))


def _check(spec, args):
    ref_fn = spec_reference(spec)
    try:
        ref = np.asarray(ref_fn(*args))
    except Exception:
        # the numpy path itself errors (complex intermediate into a
        # real-only ufunc): a guard must have aborted the kernel first,
        # so the tier either raised identically or fell back
        try:
            out = engine.run(spec, args, ref_fn)
        except Exception:
            return
        assert out is None
        return
    out = engine.run(spec, args, ref_fn)
    if out is None:
        return  # fallback is always legal; divergence never is
    if np.iscomplexobj(ref):
        pytest.fail(f"native produced real bits where numpy promotes "
                    f"to complex: {spec!r}")
    assert out.dtype == np.float64
    assert _bits_match(out, np.ascontiguousarray(ref)), (
        f"native bits diverged for {spec!r}\n"
        f"native: {out!r}\nnumpy:  {ref!r}")


@settings(max_examples=120, deadline=None)
@given(spec=spec_trees(SAFE_OPS), args=operand_lists())
def test_exact_chains_never_diverge(spec, args):
    _check(spec, args)


@settings(max_examples=120, deadline=None)
@given(spec=spec_trees(ALL_OPS), args=operand_lists())
def test_full_surface_never_diverges(spec, args):
    _check(spec, args)


@settings(max_examples=40, deadline=None)
@given(args=operand_lists())
def test_pow_const_chains_never_diverge(args):
    for const in (0.0, 1.0, 2.0, -1.0):
        _check((".^", ("+", "@0", "@1"), const), args)


def test_every_safe_op_engages():
    """Engagement, deterministically: every guard-free EXACT op must be
    served natively on benign finite inputs (no probe can reject it, no
    guard can abort it, verification must pass)."""
    a = np.array([1.5, 2.5, -3.5, 0.25])
    b = np.array([0.5, -2.0, 4.0, 8.0])
    for op in SAFE_OPS:
        arity = OPS[op].arity
        spec = (op, *(f"@{i}" for i in range(arity)))
        out = engine.run(spec, [a, b][:arity], spec_reference(spec))
        assert out is not None, f"{op} fell back on benign inputs"
        ref = np.asarray(spec_reference(spec)(*[a, b][:arity]))
        assert out.tobytes() == ref.tobytes(), op
