"""Unit tests for the native kernel engine: signature gating, semantic
guards, content-addressed caching, first-call verification, and the
constant-exponent power rewrites."""

import numpy as np
import pytest

from repro.native import NativeEngine, find_compiler, spec_key
from repro.native.codegen import UnsupportedSpecError, generate_source
from repro.native.ops import spec_reference

HAVE_CC = find_compiler() is not None

pytestmark = pytest.mark.skipif(not HAVE_CC, reason="no C compiler")


@pytest.fixture
def engine(tmp_path):
    """A fresh engine over an empty cache directory, so compile and
    disk-hit counts are deterministic per test."""
    eng = NativeEngine(cache_dir=str(tmp_path / "kernels"))
    if not eng.available:
        pytest.skip(f"native tier unavailable: {eng.unavailable_reason}")
    return eng


def _arr(*values):
    return np.ascontiguousarray(values, dtype=np.float64)


CHAIN = ("+", (".*", "@0", "@1"), 2.0)


def run_ref(engine, spec, args):
    return engine.run(spec, args, spec_reference(spec))


# ---------------------------------------------------------------------- #
# signature gate
# ---------------------------------------------------------------------- #


def test_rejects_complex_arrays(engine):
    a = np.array([1 + 2j, 3 + 0j])
    assert run_ref(engine, CHAIN, [a, _arr(1.0, 2.0)]) is None
    assert engine.stats.snapshot()["signature_fallbacks"] == 1


def test_rejects_complex_scalars(engine):
    assert run_ref(engine, CHAIN, [_arr(1.0, 2.0), 3 + 4j]) is None
    assert engine.stats.snapshot()["signature_fallbacks"] == 1


def test_rejects_non_float64(engine):
    a = np.array([1, 2, 3], dtype=np.int64)
    assert run_ref(engine, CHAIN, [a, _arr(1.0, 2.0, 3.0)]) is None
    assert engine.stats.snapshot()["signature_fallbacks"] == 1


def test_rejects_shape_mismatch(engine):
    assert run_ref(engine, CHAIN,
                   [_arr(1.0, 2.0), _arr(1.0, 2.0, 3.0)]) is None
    assert engine.stats.snapshot()["signature_fallbacks"] == 1


def test_rejects_strided_views(engine):
    a = np.arange(8.0)[::2]
    assert not a.flags.c_contiguous
    assert run_ref(engine, CHAIN, [a, np.arange(4.0)]) is None
    assert engine.stats.snapshot()["signature_fallbacks"] == 1


def test_rejects_pure_scalar_chains(engine):
    assert run_ref(engine, CHAIN, [2.0, 3.0]) is None
    assert engine.stats.snapshot()["signature_fallbacks"] == 1


def test_scalar_broadcast_and_bool_args(engine):
    # a (1,1) replicated scalar next to a column vector — the runtime's
    # shapes — demotes to a C double argument
    a = np.ascontiguousarray([[1.0], [2.0], [3.0]])
    out = run_ref(engine, CHAIN, [a, np.array([[2.0]])])
    ref = np.asarray(spec_reference(CHAIN)(a, np.array([[2.0]])))
    assert out.tobytes() == ref.tobytes()
    out2 = run_ref(engine, ("&", "@0", "@1"), [_arr(1.0, 2.0), True])
    assert out2.tolist() == [1.0, 1.0]


# ---------------------------------------------------------------------- #
# semantic guards: complex promotion stays on the numpy path
# ---------------------------------------------------------------------- #


def test_sqrt_guard_aborts_on_negative(engine):
    spec = ("fn:sqrt", "@0")
    ok = run_ref(engine, spec, [_arr(4.0, 9.0)])
    assert ok.tolist() == [2.0, 3.0]
    assert run_ref(engine, spec, [_arr(4.0, -1.0)]) is None
    assert engine.stats.snapshot()["guard_fallbacks"] == 1


def test_guard_fallback_reference_promotes(engine):
    # the numpy path the caller falls back to really does go complex
    ref = spec_reference(("fn:sqrt", "@0"))(_arr(-4.0))
    assert np.iscomplexobj(ref) and ref[0] == 2j


# ---------------------------------------------------------------------- #
# power rewrites
# ---------------------------------------------------------------------- #


def test_pow_const_rewrites(engine):
    a = _arr(-3.0, 0.5, 7.0, 0.0)
    for const in (0.0, 1.0, 2.0, -1.0):
        spec = (".^", "@0", const)
        out = run_ref(engine, spec, [a])
        ref = np.asarray(spec_reference(spec)(a))
        assert out is not None, f"a .^ {const} fell back"
        assert out.tobytes() == ref.tobytes()


def test_pow_fractional_exponent_unsupported(engine):
    assert run_ref(engine, (".^", "@0", 0.5), [_arr(1.0, 4.0)]) is None
    assert engine.stats.snapshot()["unsupported_specs"] == 1
    with pytest.raises(UnsupportedSpecError):
        generate_source((".^", "@0", 0.5), "a", "k_x")


def test_unknown_op_unsupported(engine):
    assert run_ref(engine, ("fn:erf", "@0"), [_arr(1.0, 2.0)]) is None
    assert engine.stats.snapshot()["unsupported_specs"] == 1


# ---------------------------------------------------------------------- #
# caching
# ---------------------------------------------------------------------- #


def test_compile_once_then_memory_hits(engine):
    a = _arr(1.0, 2.0, 3.0)
    for _ in range(3):
        out = run_ref(engine, CHAIN, [a, a])
        assert out is not None
    stats = engine.stats.snapshot()
    assert stats["compiles"] == 1
    assert stats["kernels"] == 1
    assert stats["mem_hits"] == 2
    assert stats["native_calls"] == 3


def test_warm_disk_cache_zero_recompiles(engine, tmp_path):
    a = _arr(1.0, 2.0, 3.0)
    assert run_ref(engine, CHAIN, [a, a]) is not None
    warm = NativeEngine(cache_dir=str(tmp_path / "kernels"))
    assert run_ref(warm, CHAIN, [a, a]) is not None
    stats = warm.stats.snapshot()
    assert stats["compiles"] == 0, "warm cache must not recompile"
    assert stats["disk_hits"] == 1


def test_cache_key_separates_spec_and_signature(engine):
    a = _arr(1.0, 2.0)
    assert run_ref(engine, CHAIN, [a, a]) is not None       # sig "aa"
    assert run_ref(engine, CHAIN, [a, 5.0]) is not None     # sig "as"
    assert engine.stats.snapshot()["compiles"] == 2
    assert spec_key(CHAIN, "aa") != spec_key(CHAIN, "as")
    assert spec_key(CHAIN, "aa") != spec_key(("+", "@0", "@1"), "aa")


# ---------------------------------------------------------------------- #
# first-call verification
# ---------------------------------------------------------------------- #


def test_verify_mismatch_blacklists_kernel(engine):
    a = _arr(1.0, 2.0)
    lying = lambda x, y: x * y + 3.0  # noqa: E731 — not what CHAIN does
    assert engine.run(CHAIN, [a, a], lying) is None
    assert engine.stats.snapshot()["verify_rejects"] == 1
    # permanently numpy-only, even with an honest reference later
    assert run_ref(engine, CHAIN, [a, a]) is None
    assert engine.stats.snapshot()["native_calls"] == 0


def test_no_reference_means_no_native_until_verified(engine):
    a = _arr(1.0, 2.0)
    assert engine.run(CHAIN, [a, a], None) is None
    assert run_ref(engine, CHAIN, [a, a]) is not None
