"""Mode resolution and forced-fallback behavior: ``off`` never touches
the tier, a poisoned compiler degrades ``auto`` cleanly and makes
``require`` raise, and full programs produce bitwise-identical results
and virtual clocks with the tier on or off."""

import numpy as np
import pytest

from repro.bench.workloads import image_filter
from repro.compiler import compile_source
from repro.mpi import MEIKO_CS2
from repro.native import (
    ENV_CC,
    ENV_NATIVE,
    NativeUnavailableError,
    find_compiler,
    get_engine,
    reset_engines,
    resolve_native,
)

HAVE_NATIVE = find_compiler() is not None and get_engine().available


# ---------------------------------------------------------------------- #
# mode resolution
# ---------------------------------------------------------------------- #


def test_off_mode_resolves_to_none():
    assert resolve_native("off") is None


def test_env_off_resolves_to_none(monkeypatch):
    monkeypatch.setenv(ENV_NATIVE, "off")
    assert resolve_native() is None


def test_explicit_mode_beats_env(monkeypatch):
    monkeypatch.setenv(ENV_NATIVE, "require")
    assert resolve_native("off") is None


def test_invalid_mode_rejected():
    with pytest.raises(ValueError, match="native mode"):
        resolve_native("fast")


@pytest.mark.skipif(not HAVE_NATIVE, reason="native tier unavailable")
def test_auto_resolves_to_engine():
    assert resolve_native("auto") is get_engine()


# ---------------------------------------------------------------------- #
# poisoned compiler: authoritative, no silent rescue by system gcc
# ---------------------------------------------------------------------- #


@pytest.fixture
def poisoned(monkeypatch):
    monkeypatch.setenv(ENV_CC, "/nonexistent/bin/cc")
    reset_engines()
    yield
    reset_engines()


def test_poisoned_cc_is_authoritative(poisoned):
    assert find_compiler() is None
    engine = get_engine()
    assert not engine.available
    assert "no C compiler" in engine.unavailable_reason


def test_poisoned_cc_auto_degrades(poisoned):
    assert resolve_native("auto") is None


def test_poisoned_cc_require_raises(poisoned):
    with pytest.raises(NativeUnavailableError, match="unavailable"):
        resolve_native("require")


# ---------------------------------------------------------------------- #
# program level: same bits, same virtual clock, zero warm recompiles
# ---------------------------------------------------------------------- #

BACKENDS = ("lockstep", "threads", "fused")


def _ws_equal(a, b):
    for key in sorted(set(a) | set(b)):
        va, vb = np.asarray(a[key]), np.asarray(b[key])
        if va.dtype != vb.dtype or va.shape != vb.shape:
            return False
        if va.tobytes() != vb.tobytes():
            return False
    return True


@pytest.mark.skipif(not HAVE_NATIVE, reason="native tier unavailable")
@pytest.mark.parametrize("backend", BACKENDS)
def test_program_native_bit_identical(backend):
    program = compile_source(image_filter(n=24, steps=2).source,
                             name="imgf")
    off = program.run(nprocs=4, machine=MEIKO_CS2, backend=backend,
                      native="off")
    on = program.run(nprocs=4, machine=MEIKO_CS2, backend=backend,
                     native="require")
    assert off.output == on.output
    assert off.elapsed == on.elapsed
    assert _ws_equal(off.workspace, on.workspace)
    assert off.native is None
    assert on.native["mode"] == "require"
    assert on.native["native_calls"] > 0, "tier never engaged"


@pytest.mark.skipif(not HAVE_NATIVE, reason="native tier unavailable")
def test_second_run_zero_recompiles():
    program = compile_source(image_filter(n=24, steps=2).source,
                             name="imgf")
    program.run(nprocs=4, machine=MEIKO_CS2, backend="fused",
                native="require")
    warm = program.run(nprocs=4, machine=MEIKO_CS2, backend="fused",
                       native="require")
    assert warm.native["compiles"] == 0, "warm run recompiled kernels"
    assert warm.native["disk_hits"] == 0, "warm run re-read the disk cache"
    assert warm.native["native_calls"] > 0
