"""CLI tests (argument parsing + each command end-to-end)."""

import os

import pytest

from repro.cli import main

CG = """\
n = 32;
rand('seed', 1);
A = rand(n, n) + n * eye(n);
b = A * ones(n, 1);
x = A \\ b;
fprintf('max err %.2e\\n', max(abs(x - 1)));
"""


@pytest.fixture
def script(tmp_path):
    path = tmp_path / "demo.m"
    path.write_text(CG)
    return str(path)


class TestCompile:
    def test_emit_c_default(self, script, capsys):
        assert main(["compile", script]) == 0
        out = capsys.readouterr().out
        assert "ML_init_runtime" in out

    def test_emit_python(self, script, capsys):
        assert main(["compile", script, "--emit", "python"]) == 0
        assert "def main(rt):" in capsys.readouterr().out

    def test_emit_ir(self, script, capsys):
        assert main(["compile", script, "--emit", "ir"]) == 0
        assert "program demo" in capsys.readouterr().out

    def test_emit_matlab_roundtrips(self, script, capsys):
        assert main(["compile", script, "--emit", "matlab"]) == 0
        echoed = capsys.readouterr().out
        assert "rand('seed', 1);" in echoed

    def test_output_file(self, script, tmp_path, capsys):
        target = str(tmp_path / "out.c")
        assert main(["compile", script, "-o", target]) == 0
        with open(target) as fh:
            assert "ML_init_runtime" in fh.read()
        assert "wrote" in capsys.readouterr().out

    def test_compile_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.m"
        bad.write_text("x = [1, 2\n")
        assert main(["compile", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["compile", "/nonexistent/x.m"]) == 1


class TestRun:
    def test_run_parallel(self, script, capsys):
        assert main(["run", script, "--nprocs", "4"]) == 0
        out = capsys.readouterr().out
        assert "max err" in out

    def test_run_with_time(self, script, capsys):
        assert main(["run", script, "-n", "2", "--time",
                     "--machine", "cluster"]) == 0
        err = capsys.readouterr().err
        assert "SPARCserver-20 cluster" in err and "ms modeled" in err

    def test_run_cyclic(self, script, capsys):
        assert main(["run", script, "--scheme", "cyclic"]) == 0
        assert "max err" in capsys.readouterr().out

    def test_run_with_mfile_path(self, tmp_path, capsys):
        (tmp_path / "double_it.m").write_text(
            "function y = double_it(x)\ny = 2 * x;\n")
        s = tmp_path / "main.m"
        s.write_text("fprintf('%d\\n', double_it(21));\n")
        assert main(["run", str(s)]) == 0
        assert capsys.readouterr().out == "42\n"


class TestInterp:
    def test_interp_matches_run(self, script, capsys):
        assert main(["interp", script]) == 0
        interp_out = capsys.readouterr().out
        assert main(["run", script]) == 0
        assert capsys.readouterr().out == interp_out

    def test_matcom_flag(self, script, capsys):
        assert main(["interp", script, "--matcom", "--time"]) == 0
        assert "[matcom]" in capsys.readouterr().err


class TestBench:
    def test_table1(self, capsys):
        assert main(["bench", "--figure", "table1"]) == 0
        assert "FALCON" in capsys.readouterr().out

    def test_figure2_small(self, capsys):
        assert main(["bench", "--figure", "2", "--scale", "small"]) == 0
        assert "MATCOM" in capsys.readouterr().out


class TestProjectEmit:
    def test_project_directory(self, script, tmp_path, capsys):
        outdir = str(tmp_path / "proj")
        assert main(["compile", script, "--emit", "project",
                     "-o", outdir]) == 0
        import os

        files = set(os.listdir(outdir))
        assert files == {"main.c", "otter_runtime.h", "Makefile"}
        with open(os.path.join(outdir, "Makefile")) as fh:
            mk = fh.read()
        assert "mpicc" in mk and "mpirun" in mk
        with open(os.path.join(outdir, "main.c")) as fh:
            assert '#include "otter_runtime.h"' in fh.read()


class TestJsonBench:
    def test_table1_json(self, capsys):
        import json

        assert main(["bench", "--figure", "table1",
                     "--format", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 8
        assert any(r["name"] == "Otter" for r in rows)

    def test_figure2_json(self, capsys):
        import json

        assert main(["bench", "--figure", "2", "--scale", "small",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["figure"] == 2
        assert set(payload["relative"]) == {"cg", "ocean", "nbody",
                                            "closure"}


class TestPaperScripts:
    def test_run_shipped_cg_script(self, capsys):
        import os

        import repro.bench as bench_pkg

        script = os.path.join(os.path.dirname(bench_pkg.__file__),
                              "mscripts", "closure.m")
        assert main(["run", script, "-n", "4"]) == 0
        out = capsys.readouterr().out
        assert "reachable" in out
