"""Plan semantics: identity, validation, knob plumbing, and the
collective-algorithm cost math the tuner exploits."""

import numpy as np
import pytest

from repro.compiler import (
    clear_compile_cache,
    compile_cache_stats,
    compile_cached,
    compile_source,
)
from repro.mpi.machine import MEIKO_CS2
from repro.runtime.distribution import configure_map_cache, map_cache_stats
from repro.tuning import DEFAULT_PLAN, Plan

LOOP_SRC = """\
n = 24;
a = rand(n, n);
v = rand(n, 1);
for i = 1:4
  w = a' * v;
  v = w / (norm(w) + 1);
  v(1) = v(1) + 1;
end
s = sum(v);
"""


# -- identity ------------------------------------------------------------- #


def test_default_plan_compiles_identically():
    """plan=DEFAULT_PLAN must be byte-for-byte the legacy pipeline."""
    legacy = compile_source(LOOP_SRC)
    planned = compile_source(LOOP_SRC, plan=DEFAULT_PLAN)
    assert legacy.python_source == planned.python_source
    assert legacy.c_source == planned.c_source


def test_plan_keys_distinguish_plans():
    a = Plan()
    b = Plan(licm="safe")
    c = Plan(dist=(("x", "cyclic"),))
    assert len({a.key(), b.key(), c.key()}) == 3
    assert a.key() == Plan().key()          # content hash, not object id
    assert a.key() == DEFAULT_PLAN.key()


def test_compile_key_ignores_runtime_knobs():
    """Plans differing only in runtime knobs share one compilation."""
    compile_only = Plan()
    runtime_only = Plan(scheme="cyclic", gather_algo="doubling",
                        allreduce_algo="halving", cache_gathers=True,
                        dist=(("v", "cyclic"),))
    assert compile_only.compile_key() == runtime_only.compile_key()
    assert Plan(licm="off").compile_key() != compile_only.compile_key()

    clear_compile_cache()
    p1 = compile_cached(LOOP_SRC, plan=compile_only)
    p2 = compile_cached(LOOP_SRC, plan=runtime_only)
    assert p1 is p2
    stats = compile_cache_stats()
    assert stats["hits"] == 1 and stats["misses"] == 1


def test_plan_validation():
    with pytest.raises(ValueError):
        Plan(scheme="diagonal")
    with pytest.raises(ValueError):
        Plan(licm="sometimes")
    with pytest.raises(ValueError):
        Plan(guard="nobody")
    with pytest.raises(ValueError):
        Plan(fusion=("cse", "cse"))
    with pytest.raises(ValueError):
        Plan(gather_algo="quantum")
    with pytest.raises(ValueError):
        Plan(dist=(("x", "striped"),))


def test_plan_dist_is_canonicalized():
    a = Plan(dist=(("b", "cyclic"), ("a", "block")))
    b = Plan(dist=(("a", "block"), ("b", "cyclic")))
    assert a == b and a.key() == b.key()


def test_summary_and_describe():
    assert DEFAULT_PLAN.summary() == "default"
    p = Plan(licm="off", gather_algo="doubling")
    assert "licm=off" in p.summary()
    assert "gather_algo=doubling" in p.summary()
    assert "licm" in p.describe()


# -- collective-algorithm cost math --------------------------------------- #


@pytest.mark.parametrize("nprocs", [2, 4, 16])
@pytest.mark.parametrize("nbytes", [8, 4096, 10 ** 6])
def test_doubling_gather_never_slower_than_ring(nprocs, nbytes):
    ring = MEIKO_CS2
    doubling = DEFAULT_PLAN.apply_machine(ring)  # default: no change
    assert doubling is ring
    doubling = Plan(gather_algo="doubling").apply_machine(ring)
    for op in ("gather", "scatter", "allgather"):
        assert (doubling.collective_time(op, nbytes, nprocs)
                <= ring.collective_time(op, nbytes, nprocs))


@pytest.mark.parametrize("nprocs", [2, 4, 16])
@pytest.mark.parametrize("nbytes", [0, 8, 4096, 10 ** 6])
def test_halving_allreduce_never_slower_than_tree(nprocs, nbytes):
    tree = MEIKO_CS2
    halving = Plan(allreduce_algo="halving").apply_machine(tree)
    assert (halving.collective_time("allreduce", nbytes, nprocs)
            <= tree.collective_time("allreduce", nbytes, nprocs))


def test_alltoall_keeps_ring_under_doubling():
    """Recursive doubling does not apply to personalized all-to-all."""
    doubling = Plan(gather_algo="doubling").apply_machine(MEIKO_CS2)
    assert (doubling.collective_time("alltoall", 4096, 8)
            == MEIKO_CS2.collective_time("alltoall", 4096, 8))


def test_machine_model_validates_algos():
    import dataclasses
    with pytest.raises(ValueError):
        dataclasses.replace(MEIKO_CS2, gather_algo="bogus")
    with pytest.raises(ValueError):
        dataclasses.replace(MEIKO_CS2, allreduce_algo="bogus")


# -- knob plumbing: every plan value is correct, merely differently paced - #


def _workspace(plan, nprocs=4):
    prog = compile_source(LOOP_SRC, plan=plan)
    result = prog.run(nprocs=nprocs, backend="fused", plan=plan, tune=False)
    return {k: np.asarray(v) for k, v in result.workspace.items()}


@pytest.mark.parametrize("plan", [
    Plan(licm="off"),
    Plan(licm="safe"),
    Plan(guard="replicated"),
    Plan(ew_split=True),
    Plan(fusion=()),
    Plan(fusion=("cse",)),
    Plan(scheme="cyclic"),
    Plan(gather_algo="doubling", allreduce_algo="halving"),
], ids=lambda p: p.summary())
def test_every_knob_preserves_numerics(plan):
    ref = _workspace(DEFAULT_PLAN)
    got = _workspace(plan)
    assert set(ref) == set(got)
    for key in ref:
        np.testing.assert_allclose(got[key], ref[key],
                                   rtol=1e-9, atol=1e-12, err_msg=key)


def test_licm_policies_actually_differ():
    aggressive = compile_source(LOOP_SRC, plan=Plan(licm="aggressive"))
    off = compile_source(LOOP_SRC, plan=Plan(licm="off"))
    assert off.licm_stats.hoisted == 0
    assert aggressive.licm_stats.hoisted >= off.licm_stats.hoisted
    safe = compile_source(LOOP_SRC, plan=Plan(licm="safe"))
    assert safe.licm_stats.hoisted <= aggressive.licm_stats.hoisted


def test_ew_split_produces_single_op_trees():
    src = "n = 8;\nu = rand(n, 1);\nw = u + 2 * u .* u - u / 3;\nt = sum(w);"
    fused = compile_source(src)
    split = compile_source(src, plan=Plan(ew_split=True))
    assert split.python_source != fused.python_source
    # split never emits a nested ew tree: every rt.ew call has depth 1
    from repro.ir.nodes import Elementwise, EwNode
    for block in split.ir.walk():
        for stmt in block:
            if isinstance(stmt, Elementwise) and isinstance(stmt.expr, EwNode):
                assert not any(isinstance(a, EwNode)
                               for a in stmt.expr.args), stmt


# -- map-geometry cache --------------------------------------------------- #


def test_map_cache_configure_and_stats():
    old = map_cache_stats()["maxsize"]
    try:
        size = configure_map_cache(512)
        assert size == 512
        assert map_cache_stats()["maxsize"] == 512
        before = map_cache_stats()["misses"]
        prog = compile_source("n = 32;\nv = rand(n, 1);\ns = sum(v);")
        prog.run(nprocs=4, backend="fused", tune=False)
        prog.run(nprocs=4, backend="fused", tune=False)
        stats = map_cache_stats()
        assert stats["misses"] > before     # first run populated
        assert stats["hits"] > 0            # second run reused geometry
        assert set(stats["per_cache"]) == {
            "get_map", "block_counts", "block_starts", "cyclic_counts"}
    finally:
        configure_map_cache(old)


def test_map_cache_env_override(monkeypatch):
    from repro.runtime import distribution
    monkeypatch.setenv("REPRO_MAP_CACHE_SIZE", "128")
    old = map_cache_stats()["maxsize"]
    try:
        assert distribution.configure_map_cache() == 128
    finally:
        configure_map_cache(old)
