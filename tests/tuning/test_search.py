"""The search driver's contract: tuned never worse than default, budget
respected, memoization effective, and real wins on collective-heavy
programs."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.compiler import clear_compile_cache, compile_source
from repro.tuning import (
    DEFAULT_PLAN,
    alignment_classes,
    clear_eval_memo,
    enumerate_plans,
    eval_memo_stats,
    plan_axes,
    tune_program,
)

MATVEC_SRC = """\
n = 48;
A = rand(n, n);
v = rand(n, 1);
for i = 1:4
  v = A * v;
  v = v / (norm(v) + 1);
end
s = sum(v);
"""

_STMT_POOL = [
    "v = a * v;",
    "v = v / (norm(v) + 1);",
    "a = a + a';",
    "v = cumsum(v);",
    "s = sum(v); v = v + s / n;",
    "v = circshift(v, 1);",
    "for i = 1:2\n  v = a * v;\nend",
]


@st.composite
def small_programs(draw):
    n = draw(st.sampled_from([6, 9]))
    stmts = draw(st.lists(st.sampled_from(_STMT_POOL),
                          min_size=1, max_size=3))
    return "\n".join([f"n = {n};", "a = rand(n, n);", "v = rand(n, 1);"]
                     + stmts + ["total = sum(v);"])


# -- the headline property ------------------------------------------------ #


@settings(max_examples=10, deadline=None)
@given(small_programs(), st.sampled_from([2, 4]))
def test_tuned_never_worse_than_default(src, nprocs):
    """For any program, the tuned plan's virtual clock is <= the default
    plan's: the default is always candidate 0 and the winner is the
    argmin over valid candidates."""
    tuned = tune_program(src, nprocs=nprocs, budget=16)
    assert tuned.best.cost <= tuned.default.cost
    assert tuned.improvement >= 0.0
    assert tuned.default.plan == DEFAULT_PLAN


# -- mechanics ------------------------------------------------------------ #


def test_budget_is_respected():
    for budget in (1, 3, 10):
        tuned = tune_program(MATVEC_SRC, nprocs=4, budget=budget)
        assert 1 <= len(tuned.candidates) <= budget


def test_eval_memo_serves_repeat_searches():
    clear_eval_memo()
    clear_compile_cache()
    first = tune_program(MATVEC_SRC, nprocs=4, budget=12)
    assert not any(c.cached for c in first.candidates)
    again = tune_program(MATVEC_SRC, nprocs=4, budget=12)
    assert all(c.cached for c in again.candidates)
    assert eval_memo_stats()["hits"] >= len(again.candidates)
    # same objective either way
    assert again.best.cost == first.best.cost


def test_collective_heavy_program_strictly_improves_at_16():
    """At P=16 the matvec loop allgathers every iteration; recursive
    doubling must beat the modeled ring/sequential-root library."""
    tuned = tune_program(MATVEC_SRC, nprocs=16, budget=64)
    assert tuned.improvement > 0.01
    assert tuned.best.plan.gather_algo == "doubling"
    # and the winner's numerics were checked against the default's
    assert tuned.best.valid


def test_failed_program_reports_without_searching():
    # compiles fine, dies at run time (index out of range)
    tuned = tune_program("v = rand(4, 1);\ns = v(9);", nprocs=4, budget=8)
    assert len(tuned.candidates) == 1
    assert not np.isfinite(tuned.default.cost)
    assert tuned.best is tuned.default
    assert tuned.improvement == 0.0


def test_uncompilable_program_raises():
    import pytest

    from repro.errors import OtterError
    with pytest.raises(OtterError):
        tune_program("undefined_function_xyz(3);", nprocs=4, budget=8)


def test_tune_result_json_roundtrip():
    tuned = tune_program(MATVEC_SRC, nprocs=4, budget=8)
    payload = tuned.to_json()
    assert payload["default_vclock"] >= payload["tuned_vclock"]
    assert payload["best_plan"]["scheme"] in ("block", "cyclic")
    assert len(payload["candidates"]) == len(tuned.candidates)
    assert "plan search" in tuned.report()


# -- enumeration ---------------------------------------------------------- #


def test_enumerate_plans_default_first_unique_deterministic():
    program = compile_source(MATVEC_SRC)
    plans_a = enumerate_plans(program, None, nprocs=4, budget=32)
    plans_b = enumerate_plans(program, None, nprocs=4, budget=32)
    assert plans_a == plans_b
    assert plans_a[0] == DEFAULT_PLAN
    keys = [p.key() for p in plans_a]
    assert len(keys) == len(set(keys))
    assert len(plans_a) <= 32


def test_plan_axes_prune_on_probe_counts():
    program = compile_source(MATVEC_SRC)
    # no collectives observed -> no collective-algorithm axes
    axes = plan_axes(program, {"allgather": 0, "allreduce": 0}, nprocs=4)
    assert "gather_algo" not in axes
    assert "allreduce_algo" not in axes
    # observed -> axes present
    axes = plan_axes(program, {"allgather": 3, "allreduce": 2}, nprocs=4)
    assert "gather_algo" in axes
    assert "allreduce_algo" in axes
    # serial runs have no distribution or collective axes at all
    axes = plan_axes(program, None, nprocs=1)
    assert "dist" not in axes and "gather_algo" not in axes


def test_alignment_classes_group_interacting_names():
    program = compile_source(MATVEC_SRC)
    classes = alignment_classes(program.ir)
    by_name = {name: cls for cls in classes for name in cls}
    # A and v interact through the matvec: same class
    assert by_name["A"] == by_name["v"]


def test_run_with_tune_returns_tuned_result():
    program = compile_source(MATVEC_SRC)
    result = program.run(nprocs=4, backend="fused", tune=True,
                         tune_budget=8)
    assert result.tune is not None
    assert len(result.tune.candidates) <= 8
    # the run itself executed under the winning plan
    assert result.spmd.elapsed <= result.tune.default.cost + 1e-12


# -- topology-aware axes (modern machine profiles) ------------------------- #


def test_hierarchy_axis_requires_multi_node_machine():
    from repro.mpi import FATTREE_CLUSTER, MEIKO_CS2

    program = compile_source(MATVEC_SRC)
    counts = {"allgather": 3, "allreduce": 2}
    # Meiko is a single 16-CPU node: no hierarchy knob to turn
    axes = plan_axes(program, counts, nprocs=16, machine=MEIKO_CS2)
    assert "hierarchy" not in axes
    # no machine given -> no topology evidence -> no axis
    axes = plan_axes(program, counts, nprocs=16)
    assert "hierarchy" not in axes
    # fat tree at P=64 spans nodes: the flat deviation is offered
    axes = plan_axes(program, counts, nprocs=64, machine=FATTREE_CLUSTER)
    assert axes["hierarchy"] == [{"hierarchy": "flat"}]
    # but not when the whole world fits on one 32-core node
    axes = plan_axes(program, counts, nprocs=16, machine=FATTREE_CLUSTER)
    assert "hierarchy" not in axes
    # and not without any collectives to reroute
    axes = plan_axes(program, {"allgather": 0}, nprocs=64,
                     machine=FATTREE_CLUSTER)
    assert "hierarchy" not in axes


def test_enumerate_plans_explores_hierarchy_on_fattree():
    from repro.mpi import FATTREE_CLUSTER

    program = compile_source(MATVEC_SRC)
    plans = enumerate_plans(program, None, nprocs=64, budget=64,
                            machine=FATTREE_CLUSTER)
    assert any(p.hierarchy == "flat" for p in plans)
    # without the machine the knob never appears
    plans = enumerate_plans(program, None, nprocs=64, budget=64)
    assert all(p.hierarchy == "auto" for p in plans)


def test_tuned_never_worse_on_modern_profile():
    """The headline guarantee holds on the fat-tree profile too, with the
    hierarchy axis in play at a node-spanning P."""
    from repro.mpi import FATTREE_CLUSTER

    tuned = tune_program(MATVEC_SRC, nprocs=64, budget=24,
                         machine=FATTREE_CLUSTER)
    assert tuned.best.cost <= tuned.default.cost
    assert tuned.improvement >= 0.0
    assert tuned.best.valid
    # the search actually considered a flat-hierarchy candidate
    assert any(c.plan.hierarchy == "flat" for c in tuned.candidates)
