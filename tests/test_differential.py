"""Differential tests: compiled programs (at several rank counts) must
reproduce the reference interpreter exactly (P=1) or to floating-point
reassociation tolerance (P>1).

This corpus is the backbone of the reproduction's correctness story —
each script exercises a different slice of the language/runtime.
"""

import numpy as np
import pytest

from repro.frontend.mfile import DictProvider

CORPUS = {
    "scalar_arithmetic": """
a = 3;
b = a * 2 + 1 / 4 - 2^3;
c = mod(17, 5) + rem(-7, 3);
d = abs(-2.5) + floor(3.7) + ceil(3.2) + round(2.5);
""",
    "vector_pipeline": """
v = 1:0.5:20;
w = sqrt(v) .* sin(v) + cos(v) ./ (v + 1);
s = sum(w);
m = mean(w);
x = max(w);
n = min(w);
t = trapz(v, w);
""",
    "matrix_algebra": """
rand('seed', 2);
A = rand(12, 12);
B = rand(12, 12);
C = A * B;
D = C' + 2 * eye(12);
x = ones(12, 1);
y = D * x;
nrm = sqrt(y' * y);
sol = D \\ y;
""",
    "indexing_torture": """
a = zeros(6, 6);
for i = 1:6
    for j = 1:6
        a(i, j) = 10 * i + j;
    end
end
r = a(2, :);
c = a(:, 3);
blk = a(2:4, 3:5);
lin = a(8);
last = a(end, end);
a(1, :) = r;
a(end) = 99;
flat_sum = sum(sum(a));
""",
    "growth_and_vectors": """
for k = 1:8
    v(k) = k * k;
end
v(12) = 7;
total = sum(v);
w = v';
len = length(v);
""",
    "control_flow": """
x = 0;
for i = 1:20
    if mod(i, 3) == 0
        x = x + i;
    elseif mod(i, 5) == 0
        x = x - i;
    else
        x = x + 1;
    end
end
k = 0;
while k < 50
    k = k + 7;
    if k > 30, break, end
end
""",
    "logical_masks": """
rand('seed', 6);
a = rand(8, 8);
m = a > 0.5;
cnt = sum(sum(m));
b = m .* a;
any_big = any(any(a > 0.95));
all_pos = all(all(a > 0));
""",
    "complex_numbers": """
z = 3 + 4i;
w = z * (1 - 2i);
mag = abs(z);
re = real(w);
im = imag(w);
cj = conj(w);
zz = sqrt(-9);
""",
    "reductions_matrix": """
rand('seed', 9);
A = rand(7, 5);
cs = sum(A);
cm = mean(A);
cx = max(A);
cn = min(A);
cp = prod(ones(7, 5) + A ./ 10);
""",
    "builtin_structural": """
rand('seed', 3);
a = rand(6, 4);
b = reshape(a, 4, 6);
c = fliplr(a);
d = flipud(a);
e = tril(rand(5, 5));
f = triu(rand(5, 5), 1);
g = repmat([1, 2; 3, 4], 2, 3);
dg = diag([5, 6, 7]);
dv = diag(rand(4, 4));
""",
    "shifts_and_sort": """
rand('seed', 12);
v = rand(1, 23);
s = sort(v);
c1 = circshift(v, 3);
c2 = circshift(v', -4);
mn = s(1);
mx = s(end);
""",
    "cumulative": """
v = 1:15;
c = cumsum(v);
p = cumprod(ones(1, 10) * 1.1);
total = c(end);
""",
    "string_output": """
x = 42;
fprintf('value is %d\\n', x);
fprintf('%s: %g, %g\\n', 'pair', 1.5, 2.5);
disp('done');
""",
    "ranges_and_linspace": """
a = linspace(0, 1, 11);
b = 10:-2:1;
c = 0:0.1:0.5;
s = sum(a) + sum(b) + sum(c);
""",
    "minmax_indices": """
v = [3, 1, 4, 1, 5, 9, 2, 6];
[mx, ix] = max(v);
[mn, in_] = min(v);
""",
    "nested_calls_and_transpose": """
rand('seed', 1);
A = rand(9, 9);
t = sum(diag(A' * A));
u = norm(A(:, 1));
""",
}

MFILE_CORPUS = {
    "function_pipeline": ("""
rand('seed', 8);
data = rand(20, 1) * 10;
[m, s] = stats(data);
z = standardize(data);
check = abs(mean(z)) + abs(std_(z) - 1);
""", {
        "stats": """function [m, s] = stats(v)
m = mean(v);
s = std_(v);
""",
        "std_": """function s = std_(v)
n = length(v);
m = mean(v);
d = v - m;
s = sqrt(sum(d .* d) / (n - 1));
""",
        "standardize": """function z = standardize(v)
[m, s] = stats(v);
z = (v - m) / s;
""",
    }),
    "recursive_power": ("""
y = fastpow(3, 10);
""", {
        "fastpow": """function y = fastpow(b, e)
if e == 0
    y = 1;
elseif mod(e, 2) == 0
    h = fastpow(b, e / 2);
    y = h * h;
else
    y = b * fastpow(b, e - 1);
end
""",
    }),
}


@pytest.mark.parametrize("key", sorted(CORPUS))
def test_corpus_matches_oracle(key, assert_matches_oracle):
    assert_matches_oracle(CORPUS[key], nprocs=(1, 3, 4))


@pytest.mark.parametrize("key", sorted(MFILE_CORPUS))
def test_mfile_corpus_matches_oracle(key, assert_matches_oracle):
    src, mfiles = MFILE_CORPUS[key]
    assert_matches_oracle(src, nprocs=(1, 4),
                          provider=DictProvider(mfiles))


def test_output_identical_across_ranks(run_compiled):
    src = "v = 1:10;\nfprintf('%d,', v);\nfprintf('\\n');"
    _, out1 = run_compiled(src, nprocs=1)
    _, out4 = run_compiled(src, nprocs=4)
    assert out1 == out4 == "1,2,3,4,5,6,7,8,9,10,\n"


def test_display_format_identical(run_interp, run_compiled):
    src = "x = [1.5, 2; 3, 4]"
    interp = run_interp(src)
    _, out = run_compiled(src, nprocs=2)
    assert out == "".join(interp.output)


def test_peephole_does_not_change_results(run_compiled):
    from repro.compiler import compile_source

    src = """
rand('seed', 4);
A = rand(10, 10);
r = rand(10, 1);
s1 = r' * r;
s2 = r' * (A * r);
"""
    with_pe = compile_source(src, peephole=True).run(nprocs=4)
    without = compile_source(src, peephole=False).run(nprocs=4)
    assert abs(with_pe.workspace["s1"] - without.workspace["s1"]) < 1e-9
    assert abs(with_pe.workspace["s2"] - without.workspace["s2"]) < 1e-9


def test_cyclic_scheme_same_results(run_compiled):
    src = """
rand('seed', 5);
A = rand(9, 9);
x = ones(9, 1);
y = A * x;
s = sum(y);
"""
    block, _ = run_compiled(src, nprocs=3, scheme="block")
    cyclic, _ = run_compiled(src, nprocs=3, scheme="cyclic")
    np.testing.assert_allclose(np.asarray(block["y"]),
                               np.asarray(cyclic["y"]))


def test_benchmarks_match_oracle_small(assert_matches_oracle):
    """The four paper benchmarks at test scale, against the oracle."""
    from repro.bench.workloads import make_workload

    for key in ("cg", "ocean", "nbody", "closure"):
        w = make_workload(key, scale="small")
        assert_matches_oracle(w.source, nprocs=(1, 4), rtol=1e-6, atol=1e-9)


@pytest.mark.parametrize("key", ["matrix_algebra", "vector_pipeline",
                                 "indexing_torture", "reductions_matrix",
                                 "shifts_and_sort"])
def test_cyclic_scheme_on_corpus(key, run_interp, run_compiled):
    """The ablation distribution must be drop-in correct on real scripts."""
    interp = run_interp(CORPUS[key])
    ws, _ = run_compiled(CORPUS[key], nprocs=4, scheme="cyclic")
    for name, expected in interp.workspace.items():
        if isinstance(expected, str):
            assert ws[name] == expected
        else:
            np.testing.assert_allclose(
                np.asarray(ws[name], dtype=complex),
                np.asarray(expected, dtype=complex),
                rtol=1e-9, atol=1e-12, err_msg=f"{key}:{name}")


@pytest.mark.slow
def test_readme_quickstart_snippet():
    """The README's quickstart block must actually work as shown."""
    from repro import OtterCompiler
    from repro.mpi import MEIKO_CS2

    compiler = OtterCompiler()
    program = compiler.compile("""
n = 1024;
rand('seed', 17);
A = rand(n, n) + n * eye(n);
b = A * ones(n, 1);
x = zeros(n, 1);  r = b;  p = r;  rsold = r' * r;
for i = 1:30
    Ap = A * p;
    alpha = rsold / (p' * Ap);
    x = x + alpha * p;  r = r - alpha * Ap;
    rsnew = r' * r;
    p = r + (rsnew / rsold) * p;  rsold = rsnew;
end
fprintf('residual %.3e\\n', sqrt(rsold));
""")
    result = program.run(nprocs=16, machine=MEIKO_CS2)
    assert "residual" in result.output
    assert result.elapsed > 0
    assert "ML_matrix_multiply" in program.c_source
