"""Scriptable-REPL tests."""

import numpy as np
import pytest

from repro.frontend.mfile import DictProvider
from repro.repl import Repl, _block_delta


def drive(lines, provider=None):
    repl = Repl(provider=provider)
    repl.run_lines(lines)
    return repl


class TestBasics:
    def test_workspace_persists_across_inputs(self):
        repl = drive(["x = 2;", "y = x + 3;"])
        assert repl.workspace["y"] == 5.0

    def test_unsuppressed_display(self):
        repl = drive(["z = 7"])
        assert "z =" in "".join(repl.output)

    def test_ans_chain(self):
        repl = drive(["3 + 4;", "w = ans * 2;"])
        assert repl.workspace["w"] == 14.0

    def test_error_reported_not_fatal(self):
        repl = drive(["x = undefined_thing;", "y = 1;"])
        out = "".join(repl.output)
        assert "???" in out
        assert repl.workspace["y"] == 1.0

    def test_runtime_error_keeps_session(self):
        repl = drive(["a = ones(2, 2);", "b = a(5, 5);", "c = 3;"])
        assert "???" in "".join(repl.output)
        assert repl.workspace["c"] == 3.0

    def test_rng_state_persists(self):
        repl = drive(["rand('seed', 9);", "a = rand(2, 2);",
                      "b = rand(2, 2);"])
        assert not np.array_equal(np.asarray(repl.workspace["a"]),
                                  np.asarray(repl.workspace["b"]))


class TestMultiline:
    def test_for_block_buffered(self):
        repl = drive(["s = 0;", "for i = 1:4", "    s = s + i;", "end"])
        assert repl.workspace["s"] == 10.0

    def test_nested_blocks(self):
        repl = drive([
            "t = 0;",
            "for i = 1:3",
            "    if i > 1",
            "        t = t + i;",
            "    end",
            "end",
        ])
        assert repl.workspace["t"] == 5.0

    def test_block_delta_counts(self):
        assert _block_delta("for i = 1:3") == 1
        assert _block_delta("end") == -1
        assert _block_delta("if a, x = 1; end") == 0
        assert _block_delta("x = 'for ever'") == 0  # inside a string
        assert _block_delta("% for comment") == 0


class TestDirectives:
    def test_whos_lists_variables(self):
        repl = drive(["abc = ones(3, 4);", "whos"])
        out = "".join(repl.output)
        assert "abc" in out and "3x4" in out and "double" in out

    def test_clear_all(self):
        repl = drive(["x = 1;", "clear", "whos"])
        assert "(empty workspace)" in "".join(repl.output)
        assert not repl.workspace

    def test_clear_named(self):
        repl = drive(["x = 1;", "y = 2;", "clear x"])
        assert "y" in repl.workspace and "x" not in repl.workspace

    def test_quit_stops_processing(self):
        repl = drive(["x = 1;", "quit", "y = 2;"])
        assert "y" not in repl.workspace

    def test_profile_cycle(self):
        repl = drive(["profile on", "a = rand(16, 16);", "b = a * a;",
                      "profile report"])
        out = "".join(repl.output)
        assert "time(ms)" in out

    def test_help(self):
        repl = drive(["help"])
        assert "directives" in "".join(repl.output)


class TestMFiles:
    def test_functions_resolved_from_provider(self):
        provider = DictProvider({
            "twice": "function y = twice(x)\ny = 2 * x;"})
        repl = drive(["z = twice(21);"], provider=provider)
        assert repl.workspace["z"] == 42.0

    def test_variable_shadows_function_between_inputs(self):
        provider = DictProvider({
            "f": "function y = f(x)\ny = x + 100;"})
        repl = drive(["a = f(1);", "f = [10, 20, 30];", "b = f(2);"],
                     provider=provider)
        assert repl.workspace["a"] == 101.0
        assert repl.workspace["b"] == 20.0  # now indexing the variable
