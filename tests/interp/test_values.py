"""MATLAB value-semantics tests."""

import numpy as np
import pytest

from repro.errors import MatlabRuntimeError
from repro.interp.values import (
    COLON,
    as_matrix,
    colon_range,
    display,
    format_value,
    index_assign,
    index_read,
    is_scalar,
    numel,
    shape_of,
    simplify,
    truthy,
)


class TestConversion:
    def test_scalar_to_matrix(self):
        assert as_matrix(3.0).shape == (1, 1)

    def test_1d_is_row(self):
        assert as_matrix(np.array([1.0, 2.0])).shape == (1, 2)

    def test_simplify_1x1(self):
        assert simplify(np.array([[4.0]])) == 4.0
        assert isinstance(simplify(np.array([[4.0]])), float)

    def test_simplify_complex_with_zero_imag(self):
        assert simplify(np.array([[2 + 0j]])) == 2.0
        assert isinstance(simplify(np.array([[2 + 0j]])), float)

    def test_simplify_keeps_complex(self):
        v = simplify(np.array([[1 + 2j]]))
        assert v == 1 + 2j

    def test_string_shape(self):
        assert shape_of("abc") == (1, 3)

    def test_numel(self):
        assert numel(np.ones((3, 4))) == 12
        assert numel(7.5) == 1

    def test_3d_rejected(self):
        with pytest.raises(MatlabRuntimeError):
            as_matrix(np.ones((2, 2, 2)))


class TestTruthy:
    def test_scalar(self):
        assert truthy(1.0) and not truthy(0.0)

    def test_all_nonzero_matrix(self):
        assert truthy(np.ones((2, 2)))
        assert not truthy(np.array([[1.0, 0.0]]))

    def test_empty_is_false(self):
        assert not truthy(np.zeros((0, 0)))

    def test_string(self):
        assert truthy("x") and not truthy("")


class TestColonRange:
    def test_simple(self):
        np.testing.assert_array_equal(colon_range(1, 1, 5),
                                      [[1, 2, 3, 4, 5]])

    def test_fractional_step(self):
        r = colon_range(0, 0.1, 1)
        assert r.shape == (1, 11)
        assert abs(r[0, -1] - 1.0) < 1e-12

    def test_empty_when_backwards(self):
        assert colon_range(5, 1, 1).size == 0

    def test_negative_step(self):
        np.testing.assert_array_equal(colon_range(5, -2, 1), [[5, 3, 1]])

    def test_zero_step_raises(self):
        with pytest.raises(MatlabRuntimeError):
            colon_range(1, 0, 5)

    def test_fp_endpoint_inclusion(self):
        # the classic 0:0.1:0.3 must include 0.3
        r = colon_range(0.0, 0.1, 0.3)
        assert r.shape == (1, 4)


class TestIndexRead:
    def setup_method(self):
        self.a = np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])

    def test_scalar_2d(self):
        assert index_read(self.a, [2.0, 3.0]) == 6.0

    def test_linear_is_column_major(self):
        # element 2 in column-major order is a(2,1) = 4
        assert index_read(self.a, [2.0]) == 4.0

    def test_row_slice(self):
        np.testing.assert_array_equal(
            index_read(self.a, [1.0, COLON]), [[1.0, 2.0, 3.0]])

    def test_col_slice(self):
        np.testing.assert_array_equal(
            index_read(self.a, [COLON, 2.0]), [[2.0], [5.0]])

    def test_colon_flattens_column_major(self):
        flat = index_read(self.a, [COLON])
        np.testing.assert_array_equal(np.asarray(flat).reshape(-1),
                                      [1, 4, 2, 5, 3, 6])

    def test_vector_index_keeps_orientation(self):
        v = np.array([[10.0, 20.0, 30.0]])
        out = index_read(v, [np.array([[3.0, 1.0]])])
        np.testing.assert_array_equal(out, [[30.0, 10.0]])

    def test_out_of_bounds(self):
        with pytest.raises(MatlabRuntimeError):
            index_read(self.a, [3.0, 1.0])

    def test_zero_index_rejected(self):
        with pytest.raises(MatlabRuntimeError):
            index_read(self.a, [0.0])

    def test_fractional_index_rejected(self):
        with pytest.raises(MatlabRuntimeError):
            index_read(self.a, [1.5])


class TestIndexAssign:
    def test_scalar_store(self):
        a = np.zeros((2, 2))
        out = as_matrix(index_assign(a, [1.0, 2.0], 9.0))
        assert out[0, 1] == 9.0
        assert a[0, 1] == 0.0  # original untouched (value semantics)

    def test_grow_2d(self):
        a = np.ones((2, 2))
        out = as_matrix(index_assign(a, [4.0, 5.0], 7.0))
        assert out.shape == (4, 5)
        assert out[3, 4] == 7.0
        assert out[2, 2] == 0.0  # zero fill

    def test_create_from_none(self):
        out = as_matrix(index_assign(None, [3.0], 5.0))
        assert out.shape == (1, 3)
        np.testing.assert_array_equal(out, [[0.0, 0.0, 5.0]])

    def test_grow_row_vector_linear(self):
        v = np.array([[1.0, 2.0]])
        out = as_matrix(index_assign(v, [5.0], 9.0))
        assert out.shape == (1, 5)

    def test_grow_col_vector_linear(self):
        v = np.array([[1.0], [2.0]])
        out = as_matrix(index_assign(v, [4.0], 9.0))
        assert out.shape == (4, 1)

    def test_linear_growth_of_matrix_rejected(self):
        a = np.ones((2, 2))
        with pytest.raises(MatlabRuntimeError):
            index_assign(a, [9.0], 1.0)

    def test_block_store(self):
        a = np.zeros((3, 3))
        out = as_matrix(index_assign(
            a, [np.array([[1.0, 2.0]]), COLON], np.ones((2, 3))))
        np.testing.assert_array_equal(out[:2, :], np.ones((2, 3)))

    def test_store_complex_promotes(self):
        a = np.zeros((2, 2))
        out = as_matrix(index_assign(a, [1.0, 1.0], 1j))
        assert np.iscomplexobj(out)

    def test_dimension_mismatch(self):
        a = np.zeros((3, 3))
        with pytest.raises(MatlabRuntimeError):
            index_assign(a, [COLON, 1.0], np.ones((2, 1)))

    def test_colon_assign_scalar_broadcast(self):
        a = np.ones((2, 3))
        out = as_matrix(index_assign(a, [COLON], 5.0))
        np.testing.assert_array_equal(out, np.full((2, 3), 5.0))


class TestDisplay:
    def test_integer_formatting(self):
        assert "3" in format_value(3.0)
        assert "." not in format_value(3.0)

    def test_float_formatting(self):
        assert "3.5000" in format_value(3.5)

    def test_matrix_rows(self):
        text = format_value(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert len(text.splitlines()) == 2

    def test_empty(self):
        assert "[]" in format_value(np.zeros((0, 0)))

    def test_nan_inf(self):
        assert "NaN" in format_value(float("nan"))
        assert "Inf" in format_value(float("inf"))
        assert "-Inf" in format_value(float("-inf"))

    def test_complex(self):
        assert "i" in format_value(1 + 2j)

    def test_display_block(self):
        block = display("x", 3.0)
        assert block.startswith("x =\n")

    def test_string_passthrough(self):
        assert format_value("hello") == "hello"
