"""Reference-interpreter behaviour tests."""

import numpy as np
import pytest

from repro.errors import MatlabRuntimeError
from repro.frontend.mfile import DictProvider
from repro.interp.interpreter import run_source


def ws(src, **kw):
    return run_source(src, **kw).workspace


def out(src, **kw):
    return "".join(run_source(src, **kw).output)


class TestBasics:
    def test_arithmetic(self):
        w = ws("x = 2 + 3 * 4;")
        assert w["x"] == 14.0

    def test_matlab_division_semantics(self):
        w = ws("x = 1 / 0;")
        assert w["x"] == float("inf")

    def test_negative_sqrt_goes_complex(self):
        w = ws("z = sqrt(-4);")
        assert w["z"] == 2j

    def test_negative_fractional_power_complex(self):
        w = ws("z = (-8) ^ (1/3);")
        assert abs(w["z"] - (1 + 1.7320508j)) < 1e-6

    def test_ans_assignment(self):
        w = ws("3 + 4;")
        assert w["ans"] == 7.0

    def test_string_variable(self):
        w = ws("s = 'hello';")
        assert w["s"] == "hello"

    def test_logical_ops(self):
        w = ws("a = 1 & 0;\nb = 1 | 0;\nc = ~1;\nd = 2 > 1;")
        assert (w["a"], w["b"], w["c"], w["d"]) == (0.0, 1.0, 0.0, 1.0)

    def test_short_circuit_and(self):
        # RHS would error if evaluated
        w = ws("x = 0 && undefined_thing_never_touched(1);",
               provider=DictProvider({
                   "undefined_thing_never_touched":
                       "function y = undefined_thing_never_touched(a)\n"
                       "y = error('boom');"}))
        assert w["x"] == 0.0

    def test_transpose_conjugates(self):
        w = ws("z = [1+2i, 3];\nt = z';\nu = z.';")
        t = np.asarray(w["t"])
        u = np.asarray(w["u"])
        assert t[0, 0] == 1 - 2j
        assert u[0, 0] == 1 + 2j


class TestControlFlow:
    def test_if_chain(self):
        src = """
x = {};
if x > 5
    y = 1;
elseif x > 1
    y = 2;
else
    y = 3;
end
"""
        assert ws(src.replace("{}", "9"))["y"] == 1.0
        assert ws(src.replace("{}", "3"))["y"] == 2.0
        assert ws(src.replace("{}", "0"))["y"] == 3.0

    def test_for_over_range(self):
        w = ws("s = 0;\nfor i = 1:10\n s = s + i;\nend")
        assert w["s"] == 55.0

    def test_for_over_matrix_columns(self):
        w = ws("A = [1, 2; 3, 4];\ns = 0;\nfor c = A\n s = s + sum(c);\nend")
        assert w["s"] == 10.0

    def test_for_negative_step(self):
        w = ws("s = 0;\nfor i = 10:-2:1\n s = s + i;\nend")
        assert w["s"] == 30.0

    def test_while_break(self):
        w = ws("x = 0;\nwhile 1\n x = x + 1;\n if x == 7, break, end\nend")
        assert w["x"] == 7.0

    def test_continue(self):
        w = ws("""
s = 0;
for i = 1:10
    if mod(i, 2) == 0
        continue
    end
    s = s + i;
end
""")
        assert w["s"] == 25.0

    def test_switch_scalar(self):
        w = ws("""
mode = 2;
switch mode
case 1
    x = 10;
case {2, 3}
    x = 20;
otherwise
    x = 0;
end
""")
        assert w["x"] == 20.0

    def test_switch_string(self):
        w = ws("""
mode = 'fast';
switch mode
case 'slow'
    x = 1;
case 'fast'
    x = 2;
end
""")
        assert w["x"] == 2.0

    def test_nested_loops_with_break(self):
        w = ws("""
c = 0;
for i = 1:3
    for j = 1:5
        if j == 3, break, end
        c = c + 1;
    end
end
""")
        assert w["c"] == 6.0


class TestFunctions:
    def test_simple_call(self):
        w = ws("y = double_it(21);", provider=DictProvider({
            "double_it": "function y = double_it(x)\ny = 2 * x;"}))
        assert w["y"] == 42.0

    def test_multiple_outputs(self):
        w = ws("[a, b] = swap(1, 2);", provider=DictProvider({
            "swap": "function [a, b] = swap(x, y)\na = y;\nb = x;"}))
        assert (w["a"], w["b"]) == (2.0, 1.0)

    def test_local_scope(self):
        w = ws("x = 5;\ny = f(1);", provider=DictProvider({
            "f": "function y = f(a)\nx = 100;\ny = a + x;"}))
        assert w["x"] == 5.0 and w["y"] == 101.0

    def test_early_return(self):
        w = ws("y = clamp(-3);", provider=DictProvider({
            "clamp": """function y = clamp(x)
y = x;
if x < 0
    y = 0;
    return
end
y = y * 2;
"""}))
        assert w["y"] == 0.0

    def test_recursion(self):
        w = ws("y = fib(10);", provider=DictProvider({
            "fib": """function y = fib(n)
if n <= 2
    y = 1;
else
    y = fib(n - 1) + fib(n - 2);
end
"""}))
        assert w["y"] == 55.0

    def test_unset_output_raises(self):
        with pytest.raises(MatlabRuntimeError):
            ws("y = f(1);", provider=DictProvider({
                "f": "function y = f(x)\nz = x;"}))

    def test_too_many_args_raises(self):
        with pytest.raises(MatlabRuntimeError):
            ws("y = f(1, 2);", provider=DictProvider({
                "f": "function y = f(x)\ny = x;"}))

    def test_globals_shared(self):
        w = ws("""
global counter
counter = 0;
bump;
bump;
x = counter;
""", provider=DictProvider({
            "bump": "function bump\nglobal counter\n"
                    "counter = counter + 1;"}))
        assert w["x"] == 2.0


class TestOutput:
    def test_display_format(self):
        assert out("x = 5") == "x =\n" + "5".rjust(12) + "\n"

    def test_suppressed(self):
        assert out("x = 5;") == ""

    def test_disp(self):
        assert out("disp(7)") == "7".rjust(12) + "\n"

    def test_fprintf_cycles_format(self):
        text = out("fprintf('%d\\n', [1, 2, 3])")
        assert text == "1\n2\n3\n"

    def test_fprintf_mixed(self):
        text = out("fprintf('%s=%g\\n', 'x', 2.5)")
        assert text == "x=2.5\n"

    def test_error_builtin(self):
        with pytest.raises(MatlabRuntimeError, match="bad thing"):
            out("error('bad thing %d', 7)")


class TestIndexingPrograms:
    def test_growth_in_loop(self):
        w = ws("for i = 1:5\n v(i) = i * i;\nend")
        np.testing.assert_array_equal(np.asarray(w["v"]),
                                      [[1, 4, 9, 16, 25]])

    def test_end_arithmetic(self):
        w = ws("v = [10, 20, 30, 40];\nx = v(end - 1);")
        assert w["x"] == 30.0

    def test_matrix_end(self):
        w = ws("a = [1, 2; 3, 4];\nx = a(end, end);\ny = a(end);")
        assert w["x"] == 4.0 and w["y"] == 4.0

    def test_slice_assignment(self):
        w = ws("a = zeros(3, 3);\na(2, :) = [7, 8, 9];")
        np.testing.assert_array_equal(np.asarray(w["a"])[1], [7, 8, 9])

    def test_copy_semantics(self):
        w = ws("a = [1, 2, 3];\nb = a;\nb(1) = 99;")
        assert np.asarray(w["a"])[0, 0] == 1.0


class TestDeterminism:
    def test_seeded_rand_reproducible(self):
        w1 = ws("rand('seed', 4);\nx = rand(3, 3);")
        w2 = ws("rand('seed', 4);\nx = rand(3, 3);")
        np.testing.assert_array_equal(np.asarray(w1["x"]),
                                      np.asarray(w2["x"]))

    def test_different_seeds_differ(self):
        w1 = ws("rand('seed', 1);\nx = rand(2, 2);")
        w2 = ws("rand('seed', 2);\nx = rand(2, 2);")
        assert not np.array_equal(np.asarray(w1["x"]), np.asarray(w2["x"]))


def test_cost_meter_accumulates():
    from repro.interp.costmodel import CostMeter
    from repro.mpi.machine import MEIKO_CS2

    meter = CostMeter(MEIKO_CS2.cpu.interpreter_params())
    run_source("a = rand(100, 100);\nb = a * a;\nc = b + a;", meter=meter)
    assert meter.time > 0
    assert meter.stmts == 3
    # the matmul (2e6 flops) must dominate the elementwise add
    flop_part = 2 * 100 ** 3 * meter.params.flop_time
    assert meter.time > flop_part


def test_undefined_variable_runtime_error():
    with pytest.raises(MatlabRuntimeError):
        # q is a variable (assigned later) but used before definition
        ws("if 0\n q = 1;\nend\ny = q + 1;")
