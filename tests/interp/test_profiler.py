"""Line-profiler tests."""

import pytest

from repro.analysis.resolve import resolve_program
from repro.frontend.parser import parse_script
from repro.interp import CostMeter, Interpreter, LineProfiler
from repro.mpi.machine import MEIKO_CS2


def profile(src, seed=0):
    program = resolve_program(parse_script(src))
    profiler = LineProfiler()
    meter = CostMeter(MEIKO_CS2.cpu.interpreter_params())
    Interpreter(program, meter=meter, seed=seed,
                profiler=profiler).run()
    return profiler, meter


def test_hot_line_identified():
    src = """\
n = 64;
a = rand(n, n);
b = a * a;
c = 1 + 1;
"""
    profiler, meter = profile(src)
    (fname, line), stats = profiler.hottest(1)[0]
    assert line == 3  # the matmul dominates
    assert stats.time > 0.5 * profiler.total_time()


def _line(profiler, lineno):
    for (fname, ln), stats in profiler.lines.items():
        if ln == lineno:
            return stats
    raise KeyError(lineno)


def test_hits_count_loop_iterations():
    profiler, _ = profile("s = 0;\nfor i = 1:10\n s = s + i;\nend")
    assert _line(profiler, 3).hits == 10


def test_total_matches_meter_time():
    profiler, meter = profile("a = rand(32, 32);\nb = a + a;\nc = sum(b);")
    assert profiler.total_time() == pytest.approx(meter.time, rel=1e-9)


def test_nested_statement_attribution():
    """Inner statements are attributed to their own lines; control-flow
    headers are not double-charged, so line times sum to the total."""
    src = "t = zeros(16, 16);\nfor i = 1:5\n t = t + rand(16, 16);\nend\nz = 1;\n"
    profiler, meter = profile(src)
    inner = _line(profiler, 3)
    assert inner.hits == 5
    outer = _line(profiler, 2)   # the `for` header: exclusive time only
    assert outer.time < inner.time
    assert profiler.total_time() == pytest.approx(meter.time, rel=1e-9)


def test_report_annotates_source():
    src = "x = 1;\ny = x * 2;\n"
    profiler, _ = profile(src)
    text = profiler.report(src)
    assert "x = 1;" in text and "y = x * 2;" in text
    assert "%" in text


def test_report_without_source_ranks_lines():
    profiler, _ = profile("a = rand(8, 8);\nb = a * a;")
    text = profiler.report()
    assert "script" in text


def test_disabled_profiler_records_nothing():
    profiler = LineProfiler(enabled=False)
    profiler.record("<script>", 1, 0.5)
    assert not profiler.lines
