"""Full-file golden test: the C emitted for the conjugate-gradient
benchmark is pinned to tests/golden/cg_n64.c.

If an intentional backend change alters the output, regenerate with:

    python -c "from repro.bench.workloads import conjugate_gradient; \
from repro.compiler import compile_source; \
open('tests/golden/cg_n64.c','w').write(compile_source(\
conjugate_gradient(n=64, iters=5).source, name='cg').c_source)"
"""

import os

from repro.bench.workloads import conjugate_gradient
from repro.compiler import compile_source

GOLDEN = os.path.join(os.path.dirname(__file__), "..", "golden",
                      "cg_n64.c")


def test_cg_c_output_is_pinned():
    produced = compile_source(conjugate_gradient(n=64, iters=5).source,
                              name="cg").c_source
    with open(GOLDEN, encoding="utf-8") as fh:
        golden = fh.read()
    assert produced == golden


def test_golden_file_hits_every_paper_construct():
    with open(GOLDEN, encoding="utf-8") as fh:
        text = fh.read()
    # the CG kernel exercises: matvec, fused dots, fused loops, for loop
    assert "ML_matrix_multiply" in text
    assert "ML_dot(" in text
    assert "ML_local_els" in text
    assert "for (i = 1; i <= iters; i += 1) {" in text
