"""Golden tests for the C backend — including the paper's two worked
examples from Section 3."""

from repro.compiler import compile_source


def c_of(src, **kw):
    return compile_source(src, **kw).c_source


class TestPaperExamples:
    def test_example_one_matmul_broadcast_fused_loop(self):
        """Paper: ``a = b * c + d(i,j);`` becomes a matrix-multiply call,
        a broadcast, and an elementwise for loop."""
        c = c_of("""
b = rand(4, 4); c = rand(4, 4); d = rand(4, 4);
i = 2; j = 3;
a = b * c + d(i,j);
""")
        assert "ML_matrix_multiply(b, c, &ML_tmp" in c
        assert "ML_broadcast(&ML_tmp" in c
        assert ", d, i - 1, j - 1);" in c
        # the owner-computes loop over local elements
        assert "ML_local_els(a)" in c
        assert "a->realbase[" in c
        assert "->realbase[" in c and "+ ML_tmp" in c

    def test_example_two_owner_guarded_store(self):
        """Paper: ``a(i,j) = a(i,j) / b(j,i);`` broadcasts the operands and
        guards the store with ML_owner."""
        c = c_of("""
a = rand(4, 4); b = rand(4, 4);
i = 2; j = 3;
a(i,j) = a(i,j) / b(j,i);
""")
        assert "ML_broadcast(&ML_tmp" in c
        assert ", b, j - 1, i - 1);" in c
        assert "if (ML_owner(a, i - 1, j - 1)) {" in c
        assert "*ML_realaddr2(a, i - 1, j - 1) =" in c


class TestStructure:
    def test_header_and_main(self):
        c = c_of("x = 1;")
        assert '#include "otter_runtime.h"' in c
        assert "#include <mpi.h>" in c
        assert "int main(int argc, char *argv[])" in c
        assert "ML_init_runtime(&argc, &argv);" in c
        assert "ML_finalize_runtime();" in c

    def test_scalar_declarations_typed(self):
        c = c_of("n = 5;\nx = 2.5;")
        assert "int n = 0;" in c
        assert "double x = 0.0;" in c

    def test_matrix_declared_as_pointer(self):
        c = c_of("a = ones(3, 3);")
        assert "MATRIX *a = NULL;" in c

    def test_scalar_statement_inline(self):
        c = c_of("x = 1.5;\ny = x * 2 + 1;")
        assert "y = ((x * 2) + 1);" in c

    def test_for_loop(self):
        c = c_of("s = 0;\nfor i = 1:10\n s = s + i;\nend")
        assert "for (i = 1; i <= 10; i += 1) {" in c

    def test_while_loop(self):
        c = c_of("x = 0;\nwhile x < 5\n x = x + 1;\nend")
        assert "while (1) {" in c
        assert "if (!(ML_tmp" in c and ")) break;" in c
        assert "(x < 5)" in c

    def test_if_else(self):
        c = c_of("x = 1;\nif x > 0\n y = 1;\nelse\n y = 2;\nend")
        assert "(x > 0)" in c and "if (ML_tmp" in c
        assert "} else {" in c

    def test_user_function_emitted(self):
        from repro.frontend.mfile import DictProvider

        src = "y = f(3);"
        prog = compile_source(src, provider=DictProvider({
            "f": "function y = f(x)\ny = x * 2;"}))
        c = prog.c_source
        assert "static void otter_f(" in c
        assert "otter_f(3, &" in c

    def test_display_call(self):
        c = c_of("x = 5")
        assert "ML_print_scalar(\"x\", x);" in c

    def test_matrix_display(self):
        c = c_of("a = ones(2, 2)")
        assert "ML_print_matrix(\"a\", a);" in c

    def test_builtin_call_form(self):
        c = c_of("v = ones(4, 1);\ns = sum(v);")
        assert "ML_sum(v, &s);" in c

    def test_fused_dot_becomes_ml_dot(self):
        c = c_of("r = ones(8, 1);\ns = r' * r;")
        assert "ML_dot(r, r)" in c

    def test_elementwise_loop_counts_down(self):
        c = c_of("a = ones(4, 4);\nb = a + a;")
        assert "for (ML_i0 = ML_local_els(b)-1; ML_i0 >= 0; ML_i0--) {" in c

    def test_scalar_kernel_functions(self):
        c = c_of("x = 2.0;\ny = sqrt(x) + floor(x);")
        assert "sqrt(x)" in c and "floor(x)" in c

    def test_string_literal_in_call(self):
        c = c_of("fprintf('v=%d\\n', 3);")
        assert 'ML_fprintf("v=%d\\n", 3);' in c

    def test_colon_subscript(self):
        c = c_of("a = ones(4, 4);\nb = a(:, 2);")
        assert "ML_COLON" in c

    def test_deterministic_output(self):
        src = "a = ones(3, 3);\nb = a * a;\nc = sum(sum(b));"
        assert c_of(src) == c_of(src)
