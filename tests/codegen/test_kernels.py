"""Fused-kernel library tests: polymorphic over scalars and arrays,
MATLAB numeric semantics."""

import numpy as np
import pytest

from repro.codegen import kernels as K


class TestArithmetic:
    def test_add_scalars_and_arrays(self):
        assert K.add(2.0, 3.0) == 5.0
        np.testing.assert_array_equal(K.add(np.ones(3), 1.0), [2, 2, 2])

    def test_div_by_zero_yields_inf(self):
        assert K.div(1.0, 0.0) == np.inf
        out = K.div(np.array([1.0, -1.0]), np.zeros(2))
        np.testing.assert_array_equal(out, [np.inf, -np.inf])

    def test_ldiv_swaps(self):
        assert K.ldiv(2.0, 10.0) == 5.0

    def test_pow_negative_base_fraction_goes_complex(self):
        out = K.pow_(np.array([-8.0]), np.array([1.0 / 3.0]))
        assert np.iscomplexobj(out)

    def test_pow_integer_exponent_stays_real(self):
        out = K.pow_(np.array([-2.0]), np.array([2.0]))
        assert not np.iscomplexobj(out)
        assert out[0] == 4.0

    def test_neg_pos(self):
        assert K.neg(3.0) == -3.0
        assert K.pos(-3.0) == -3.0


class TestComparisonsAndLogic:
    def test_comparisons_return_float(self):
        assert K.lt(1.0, 2.0) == 1.0
        assert K.ge(1.0, 2.0) == 0.0
        out = K.eq(np.array([1.0, 2.0]), np.array([1.0, 3.0]))
        assert out.dtype.kind == "f"
        np.testing.assert_array_equal(out, [1.0, 0.0])

    def test_complex_ordering_uses_real_part(self):
        # MATLAB compares real parts for < / >
        assert K.lt(1 + 9j, 2 + 0j) == 1.0

    def test_logicals(self):
        assert K.land(1.0, 0.0) == 0.0
        assert K.lor(1.0, 0.0) == 1.0
        assert K.lnot(0.0) == 1.0
        np.testing.assert_array_equal(
            K.land(np.array([1.0, 2.0]), np.array([0.0, 5.0])), [0.0, 1.0])


class TestIdx:
    def test_accepts_float_subscript(self):
        assert K.idx(3.0) == 3
        assert K.idx(np.array([[7.0]])) == 7

    def test_rejects_fractional(self):
        with pytest.raises(ValueError):
            K.idx(2.5)

    def test_rejects_vector(self):
        with pytest.raises(ValueError):
            K.idx(np.array([1.0, 2.0]))

    def test_tolerates_fp_noise(self):
        assert K.idx(3.0000000000001) == 3


class TestNamedFunctions:
    def test_fn_lookup(self):
        assert K.fn("sqrt")(4.0) == 2.0
        assert K.fn("mod")(7.0, 3.0) == 1.0

    def test_sqrt_negative_scalar(self):
        out = K.fn("sqrt")(-4.0)
        assert complex(out) == 2j

    def test_every_registered_elementwise_has_kernel(self):
        from repro.ir.lower import _EW_BUILTINS

        for name in _EW_BUILTINS:
            assert name in K.FUNCS, name


class TestPowScanFastPath:
    """K.pow_'s complex-promotion check must not scan the arrays when a
    scalar operand already decides the answer (the ``x .^ 2`` hot path
    the native tier's constant rewrites rely on)."""

    def _count_scans(self, a, b):
        calls = []
        real_any = np.any

        def counting_any(*args, **kwargs):
            calls.append(args)
            return real_any(*args, **kwargs)

        orig = K.np.any
        K.np.any = counting_any
        try:
            K._pow_needs_complex(K._num(a), K._num(b))
        finally:
            K.np.any = orig
        return len(calls)

    def test_integral_scalar_exponent_scans_nothing(self):
        big = np.linspace(-5.0, 5.0, 101)
        for exp in (0.0, 1.0, 2.0, -1.0, 7.0, np.inf, -np.inf):
            assert self._count_scans(big, exp) == 0, exp

    def test_fractional_scalar_exponent_scans_base_once(self):
        big = np.linspace(1.0, 5.0, 101)
        assert self._count_scans(big, 0.5) == 1

    def test_scalar_nonnegative_base_scans_nothing(self):
        exps = np.linspace(-2.0, 2.0, 101)
        assert self._count_scans(2.0, exps) == 0
        assert self._count_scans(np.nan, exps) == 0

    def test_scalar_negative_base_scans_exponents_once(self):
        exps = np.linspace(-2.0, 2.0, 101)
        assert self._count_scans(-2.0, exps) == 1

    def test_semantics_unchanged(self):
        # negative base, fractional exponent: complex promotion
        out = K.pow_(np.array([-4.0, 4.0]), 0.5)
        assert np.iscomplexobj(out)
        np.testing.assert_allclose(out, [2j, 2.0], atol=1e-12)
        # integral scalar exponent: stays real even with negative bases
        out = K.pow_(np.array([-3.0, 3.0]), 2.0)
        assert not np.iscomplexobj(out)
        np.testing.assert_array_equal(out, [9.0, 9.0])
        # NaN exponent with a negative base promotes (NaN is "fractional")
        assert np.iscomplexobj(K.pow_(np.array([-2.0, 1.0]), np.nan))
        # NaN exponent with non-negative bases stays real
        assert not np.iscomplexobj(K.pow_(np.array([2.0, 1.0]), np.nan))
        # infinite exponents are integral: no promotion
        assert not np.iscomplexobj(K.pow_(np.array([-2.0, 2.0]), np.inf))
        # array-array mixed case still promotes exactly where needed
        out = K.pow_(np.array([-2.0, -2.0]), np.array([2.0, 2.5]))
        assert np.iscomplexobj(out)
