"""Consistency between the C emitter and otter_runtime.h: every ML_*
identifier the backend can emit must be declared in the shipped header."""

import os
import re

import pytest

from repro.compiler import compile_source
from repro.frontend.mfile import DictProvider

HEADER_PATH = os.path.join(os.path.dirname(__import__(
    "repro.codegen", fromlist=["codegen"]).__file__), "otter_runtime.h")

#: a corpus that exercises every emitter path
CORPUS = [
    "a = rand(4, 4); b = rand(4, 4); c = a * b + a(1, 2);",
    "a = rand(4, 4); i = 2; a(i, i) = a(i, i) / 2;",
    "v = 1:10; s = sum(v); m = mean(v); t = trapz(v);",
    "v = rand(8, 1); w = v' * v; x = sort(v); c = cumsum(v);",
    "a = rand(4, 4); b = a'; c = a \\ ones(4, 1); d = ones(1, 4) / a;",
    "a = rand(3, 3) ^ 2; d = diag(a); t = tril(a); u = triu(a, 1);",
    "z = sqrt(-1) + 2i; r = real(z); g = angle(z);",
    "a = rand(2, 6); b = reshape(a, 3, 4); c = repmat(b, 2, 2);",
    "v = rand(1, 9); w = circshift(v, 2); f = fliplr(v); g = flipud(v');",
    "x = 1; while x < 5\n x = x + 1;\nend\nif x > 2\n disp(x);\nend",
    "for i = 1:3\n fprintf('%d\\n', i);\nend",
    "a = rand(3, 3)\ns = 5\ndisp('hi');",
    "a = [1, 2; 3, 4]; b = a(:, 1); c = a(1, :); e = a(end);",
    "[r, c] = size(ones(2, 3)); [m, k] = max([3, 1, 4]);",
    "n = numel(ones(2, 2)); l = length(1:5); e = isempty([]);",
    "s = std(rand(10, 1)); v = var(rand(10, 1)); md = median(1:5);",
    "ix = find([0, 1, 0, 2]);",
    "a = mod(7, 3) + atan2(1, 2) + hypot(3, 4) + power(2, 5);",
    "x = pi + eps; y = floor(2.5) + ceil(2.5) + round(2.5) + fix(-2.5);",
    "m = 2; switch m\ncase 1\n x = 1;\notherwise\n x = 0;\nend",
    "t = 0; for col = rand(3, 3)\n t = t + sum(col);\nend",
    "A = rand(6, 4); B = rand(6, 3); C = A' * B;",
]

MFILE_CORPUS = [
    ("y = helper(3);", {"helper": "function y = helper(x)\ny = x * 2;"}),
]


def emitted_ml_identifiers():
    names = set()
    for src in CORPUS:
        c = compile_source(src).c_source
        names.update(re.findall(r"\bML_[A-Za-z_0-9]+\b", c))
    for src, mfiles in MFILE_CORPUS:
        c = compile_source(src, provider=DictProvider(mfiles)).c_source
        names.update(re.findall(r"\bML_[A-Za-z_0-9]+\b", c))
    # drop generated loop counters and temporaries
    # drop generated locals: temporaries, loop counters, out-params
    return {n for n in names
            if not re.match(r"ML_(tmp|i)\d+$", n)
            and not n.startswith("ML_out_")}


def header_identifiers():
    with open(HEADER_PATH, encoding="utf-8") as fh:
        text = fh.read()
    return set(re.findall(r"\bML_[A-Za-z_0-9]+\b", text))


def test_header_exists_next_to_emitter():
    assert os.path.isfile(HEADER_PATH)


def test_every_emitted_identifier_is_declared():
    emitted = emitted_ml_identifiers()
    declared = header_identifiers()
    missing = emitted - declared
    assert not missing, f"emitter produces undeclared names: {sorted(missing)}"


def test_emitted_corpus_is_substantial():
    # the corpus must actually exercise the backend broadly
    emitted = emitted_ml_identifiers()
    assert len(emitted) > 40, sorted(emitted)


def test_header_has_paper_struct_fields():
    with open(HEADER_PATH, encoding="utf-8") as fh:
        text = fh.read()
    for field in ("type", "rows", "cols", "local_els", "realbase"):
        assert field in text
    assert "typedef struct MATRIX" in text
