"""Python-backend emission tests."""

import pytest

from repro.compiler import compile_source


def py_of(src, **kw):
    return compile_source(src, **kw).python_source


class TestShape:
    def test_defines_main(self):
        py = py_of("x = 1;")
        assert "def main(rt):" in py
        assert compile(py, "<gen>", "exec")  # syntactically valid

    def test_variables_mangled(self):
        py = py_of("lambda_ = 1;\nclass_ = 2;")
        assert "v_lambda_" in py and "v_class_" in py

    def test_none_prologue(self):
        py = py_of("if 1 > 0\n x = 1;\nend\ny = 2;")
        assert "v_x = None" in py

    def test_workspace_returned(self):
        py = py_of("abc = 1;")
        assert "'abc': v_abc" in py

    def test_fused_lambda_single_ew_call(self):
        py = py_of("a = ones(3, 3);\nb = ones(3, 3);\n"
                   "c = sqrt(a) + b .* a;")
        line = [ln for ln in py.splitlines()
                if "v_c = rt.ew" in ln][0]
        assert line.count("rt.ew(") == 1
        assert "K.fn('sqrt')" in line
        assert "K.add" in line and "K.mul" in line

    def test_matmul_call(self):
        py = py_of("a = ones(3, 3);\nb = a * a;")
        assert "rt.matmul(v_a, v_a)" in py

    def test_broadcast_element_zero_based(self):
        py = py_of("d = ones(4, 4);\ni = 2;\nx = d(i, 2);")
        assert "rt.element(v_d, K.idx(v_i) - 1, K.idx(2.0) - 1)" in py

    def test_guarded_store(self):
        py = py_of("a = zeros(4, 4);\na(2, 2) = 5;")
        assert "rt.set_element(v_a, [2.0, 2.0], 5.0, reuse=True)" in py

    def test_loop_range(self):
        py = py_of("for i = 1:10\n x = i;\nend")
        assert "for v_i in rt.loop_range(1.0, 1.0, 10.0):" in py

    def test_while_re_evaluates_condition(self):
        py = py_of("x = ones(3, 1);\nwhile sum(x) < 10\n x = x + 1;\nend")
        # the sum call must appear inside the while body (re-evaluated)
        lines = py.splitlines()
        wi = next(i for i, ln in enumerate(lines) if "while True:" in ln)
        assert any("call_builtin('sum'" in ln for ln in lines[wi:wi + 3])

    def test_user_function_definition(self):
        from repro.frontend.mfile import DictProvider

        py = py_of("y = f(1);", provider=DictProvider({
            "f": "function y = f(x)\ny = x + 1;"}))
        assert "def fn_f(rt, v_x=None):" in py
        assert "fn_f(rt, 1.0)[0]" in py

    def test_multi_output_builtin(self):
        py = py_of("a = ones(3, 4);\n[r, c] = size(a);")
        assert "rt.call_builtin('size', [v_a], 2)" in py

    def test_globals_through_rt(self):
        py = py_of("global g\ng = 5;\nx = g + 1;")
        assert "rt.globals['g']" in py

    def test_deterministic(self):
        src = "a = rand(5, 5);\nb = a' * a;\ns = sum(sum(b));"
        assert py_of(src) == py_of(src)


class TestGeneratedSemantics:
    """Spot-check behaviours that only show up at run time."""

    def test_break_and_continue(self, run_compiled):
        ws, _ = run_compiled("""
s = 0;
for i = 1:10
    if i == 4, continue, end
    if i == 8, break, end
    s = s + i;
end
""")
        assert ws["s"] == 1 + 2 + 3 + 5 + 6 + 7

    def test_return_from_function(self, run_compiled):
        from repro.frontend.mfile import DictProvider

        ws, _ = run_compiled("y = sgn(-5);", provider=DictProvider({
            "sgn": """function y = sgn(x)
if x < 0
    y = -1;
    return
end
y = 1;
"""}))
        assert ws["y"] == -1.0

    def test_globals_shared_with_functions(self, run_compiled):
        from repro.frontend.mfile import DictProvider

        ws, _ = run_compiled("""
global total
total = 0;
acc(5);
acc(7);
x = total;
""", provider=DictProvider({
            "acc": "function acc(v)\nglobal total\ntotal = total + v;"}))
        assert ws["x"] == 12.0

    def test_empty_branch_bodies(self, run_compiled):
        ws, _ = run_compiled("x = 1;\nif x > 0\nend\ny = 2;")
        assert ws["y"] == 2.0

    def test_nested_function_calls(self, run_compiled):
        from repro.frontend.mfile import DictProvider

        ws, _ = run_compiled("y = outer(3);", provider=DictProvider({
            "outer": "function y = outer(x)\ny = inner(x) * 2;",
            "inner": "function y = inner(x)\ny = x + 10;"}))
        assert ws["y"] == 26.0
