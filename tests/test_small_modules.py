"""Coverage for the small support modules: names, pretty-printer, errors."""

import pytest

from repro.codegen.names import func_name, operand_py, py_const, var_name
from repro.errors import DiagnosticError, OtterError, SourceLocation
from repro.ir.nodes import ColonSub, Const, StrConst, Temp, Var
from repro.ir.pretty import pretty_ir


class TestNames:
    def test_var_mangling(self):
        assert var_name("x") == "v_x"
        assert var_name("lambda") == "v_lambda"

    def test_func_mangling(self):
        assert func_name("f") == "fn_f"

    def test_const_rendering(self):
        assert py_const(3.0) == "3.0"
        assert py_const(complex(0, 2)) == "2j"
        assert py_const(complex(1.5, 0)) == "1.5"

    def test_operand_py_forms(self):
        assert operand_py(Var("a")) == "v_a"
        assert operand_py(Temp(4)) == "ML_tmp4"
        assert operand_py(Const(2.0)) == "2.0"
        assert operand_py(StrConst("hi")) == "'hi'"

    def test_global_redirect(self):
        assert operand_py(Var("g"), globals_={"g"}) == "rt.globals['g']"

    def test_unknown_operand_rejected(self):
        with pytest.raises(TypeError):
            operand_py(ColonSub())


class TestPrettyIR:
    def test_full_program_dump(self):
        from repro.compiler import compile_source
        from repro.frontend.mfile import DictProvider

        prog = compile_source("""
x = 1;
if x > 0
    y = helper(x);
else
    y = 0;
end
for i = 1:3
    y = y + i;
end
while y > 100
    y = y / 2;
end
switch x
case 1
    z = 1;
otherwise
    z = 0;
end
a = zeros(2, 2);
a(1, 1) = 5;
disp(y)
""", provider=DictProvider({
            "helper": "function y = helper(x)\ny = x * 2;"}))
        text = prog.ir_dump()
        for marker in ("program script", "if ", "for ", "while:",
                       "function [y] = helper(x):", "[guarded]",
                       "ML_builtin:disp"):
            assert marker in text, marker


class TestErrors:
    def test_hierarchy(self):
        from repro.errors import (
            CodegenError,
            InferenceError,
            LexError,
            LoweringError,
            MatlabRuntimeError,
            MpiError,
            ParseError,
            ResolutionError,
        )

        for cls in (LexError, ParseError, ResolutionError, InferenceError,
                    LoweringError, CodegenError):
            assert issubclass(cls, DiagnosticError)
            assert issubclass(cls, OtterError)
        for cls in (MatlabRuntimeError, MpiError):
            assert issubclass(cls, OtterError)

    def test_diagnostic_message_attribute(self):
        err = DiagnosticError("boom", SourceLocation("f.m", 2, 3))
        assert err.message == "boom"
        assert "f.m:2:3" in str(err)

    def test_default_location(self):
        err = DiagnosticError("x")
        assert err.loc.filename == "<script>"
