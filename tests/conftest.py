"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.compiler import OtterCompiler, compile_source
from repro.interp.interpreter import run_source


@pytest.fixture(scope="session")
def compiler():
    return OtterCompiler()


@pytest.fixture
def run_interp():
    """Run a script in the reference interpreter, return the interpreter."""
    return run_source


@pytest.fixture
def run_compiled():
    """Compile + run a script, return (workspace, output)."""

    def _run(source, nprocs=1, provider=None, **kw):
        program = compile_source(source, provider=provider)
        result = program.run(nprocs=nprocs, **kw)
        return result.workspace, result.output

    return _run


@pytest.fixture
def assert_matches_oracle(run_interp, run_compiled):
    """Differential check: compiled (at several P) == interpreter."""

    def _check(source, nprocs=(1, 3), provider=None, rtol=1e-9, atol=1e-12):
        interp = run_interp(source, provider=provider)
        oracle_ws = interp.workspace
        oracle_out = "".join(interp.output)
        for p in nprocs:
            ws, out = run_compiled(source, nprocs=p, provider=provider)
            for name, expected in oracle_ws.items():
                assert name in ws, f"P={p}: missing variable {name!r}"
                got = ws[name]
                if isinstance(expected, str):
                    assert got == expected, f"P={p}: {name}"
                else:
                    np.testing.assert_allclose(
                        np.asarray(got, dtype=complex),
                        np.asarray(expected, dtype=complex),
                        rtol=rtol, atol=atol,
                        err_msg=f"P={p}: variable {name!r}")
            if p == 1:
                assert out == oracle_out
        return oracle_ws

    return _check
