"""Figure 4 — ocean-engineering (Morrison equation) speedup.

Paper: "The speedup achieved on this application is not as good because
the size of the data set is relatively small, and most of the operations
performed have O(n) time complexity ... increasing the overall impact of
interprocessor communication."
"""

from figure_utils import MEIKO16_RESULTS, run_speedup_figure


def test_figure4_ocean(benchmark, scale, harness):
    fig = run_speedup_figure(4, "ocean", benchmark, scale, harness)
    meiko = fig.curves["Meiko CS-2"]
    # poor scaling: well below linear at 16 CPUs
    assert meiko.at(16) < 8 * meiko.at(1)
    # and clearly below conjugate gradient (paper Fig. 3 vs Fig. 4)
    if "cg" in MEIKO16_RESULTS:
        assert meiko.at(16) < MEIKO16_RESULTS["cg"]
