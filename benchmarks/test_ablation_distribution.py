"""Ablation — row-contiguous block vs cyclic distribution.

The paper: "Data distribution decisions are made within the run-time
library ... making it easier to experiment with alternative data
distribution strategies."  This exercises that hook: the cyclic scheme
must give identical numerics; block wins on the benchmark set because
contiguous blocks keep gathers and matmul row blocks coherent.
"""

from repro.bench.workloads import make_workload


def test_ablation_distribution(benchmark, harness):
    workloads = [make_workload(k, "small") for k in ("cg", "closure")]

    def measure():
        rows = {}
        for w in workloads:
            # warm the oracle so results are cross-checked
            harness.interpreter_time(w)
            block = harness.otter_time(w, nprocs=8, scheme="block")
            cyclic = harness.otter_time(w, nprocs=8, scheme="cyclic")
            rows[w.key] = (block, cyclic)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    for key, (block, cyclic) in rows.items():
        print(f"{key:8s} block {block * 1e3:8.2f} ms   "
              f"cyclic {cyclic * 1e3:8.2f} ms   "
              f"(cyclic/block {cyclic / block:.2f}x)")
        # same numerics were already asserted by the harness oracle check;
        # performance-wise the schemes stay within 2x of each other on
        # these kernels
        assert cyclic < block * 2.0
        assert block < cyclic * 2.0
    benchmark.extra_info["rows"] = {
        k: [round(b * 1e3, 2), round(c * 1e3, 2)]
        for k, (b, c) in rows.items()}
