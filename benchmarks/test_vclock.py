"""Modeled virtual-clock benchmarks: default plan vs. tuned plan.

Where ``test_wallclock.py`` times the *host*, this module records the
*modeled* machine: for the heat stencil and the four paper workloads at
P in {1, 4, 16}, the final virtual clock under the default optimization
plan and under the plan the autotuner picks, written to
``BENCH_vclock.json`` at the repo root.

The assertions pin the autotuner's contract:

* the tuned plan never regresses the default at any rank count (the
  default plan is always candidate 0 of the search);
* at P = 16 the tuner finds a real improvement (> 1% modeled time) on at
  least three of the five workloads — the collective-heavy ones; the
  p2p-dominated stencil legitimately has little to gain;
* a >= 50-candidate search completes in < 10 s host time per workload —
  the fused backend makes candidate evaluation cheap enough to sweep.
"""

import json
import os
import time

from test_wallclock import HEAT_SOURCE

from repro.bench.workloads import make_workload
from repro.mpi import MEIKO_CS2
from repro.tuning import tune_program

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_vclock.json")

NPROCS = (1, 4, 16)
BUDGET = 64
WORKLOADS = ("heat", "cg", "ocean", "nbody", "closure")

#: at P = 16, at least this many workloads must improve by > 1%
MIN_IMPROVED = 3


def _sources(scale):
    out = {"heat": (HEAT_SOURCE, None)}
    for key in ("cg", "ocean", "nbody", "closure"):
        w = make_workload(key, scale=scale)
        out[key] = (w.source, w.provider)
    return out


def test_vclock_default_vs_tuned(scale):
    """Sweep every workload at every rank count; record and assert.

    The full 64-candidate sweep (and its < 10 s / >= 50-candidate
    claims) is a small-scale property — that is the scale the fused
    backend makes nearly free.  At calibration (paper) scale a single
    candidate evaluation runs the full-size workload, so the sweep is
    reduced to a budget-16 spot check of the never-regress contract.
    """
    if scale != "small":
        cg = make_workload("cg", scale=scale)
        tuned = tune_program(cg.source, nprocs=16, machine=MEIKO_CS2,
                             budget=16, provider=cg.provider, name="cg")
        assert tuned.improvement >= 0.0
        _merge_json({"paper_spot": {
            "workload": "cg", "nprocs": 16, "budget": 16,
            "default_vclock_ms": round(tuned.default.cost * 1e3, 6),
            "tuned_vclock_ms": round(tuned.best.cost * 1e3, 6),
            "improvement_pct": round(100.0 * tuned.improvement, 4),
            "best_plan": tuned.best.summary,
        }})
        return

    entries = {}
    for key, (source, provider) in _sources(scale).items():
        per_p = {}
        for p in NPROCS:
            t0 = time.perf_counter()
            tuned = tune_program(source, nprocs=p, machine=MEIKO_CS2,
                                 budget=BUDGET, provider=provider, name=key)
            host_s = time.perf_counter() - t0
            per_p[str(p)] = {
                "default_vclock_ms": round(tuned.default.cost * 1e3, 6),
                "tuned_vclock_ms": round(tuned.best.cost * 1e3, 6),
                "improvement_pct": round(100.0 * tuned.improvement, 4),
                "best_plan": tuned.best.summary,
                "candidates": len(tuned.candidates),
                "search_host_s": round(host_s, 4),
            }
            # contract: never regress, and the search itself is cheap
            assert tuned.improvement >= 0.0, (key, p)
            assert host_s < 10.0, (key, p, host_s)
            if p == 16:
                assert len(tuned.candidates) >= 50, (key, len(tuned.candidates))
        entries[key] = per_p

    improved = [key for key in WORKLOADS
                if entries[key]["16"]["improvement_pct"] > 1.0]
    assert len(improved) >= MIN_IMPROVED, entries

    _merge_json({
        "machine_model": MEIKO_CS2.name,
        "scale": scale,
        "nprocs": list(NPROCS),
        "budget": BUDGET,
        "workloads": entries,
        "improved_at_16": improved,
    })


def _merge_json(section: dict) -> None:
    """Read-modify-write BENCH_vclock.json (same discipline as
    ``test_wallclock._merge_into_report``, different file)."""
    report = {}
    if os.path.exists(JSON_PATH):
        try:
            with open(JSON_PATH) as fh:
                report = json.load(fh)
        except (OSError, json.JSONDecodeError):
            report = {}
    report.update(section)
    with open(JSON_PATH, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
