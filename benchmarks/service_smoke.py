"""CI service smoke: one server, two clients, warm runs compile nothing.

Run as a script (``PYTHONPATH=src:benchmarks python
benchmarks/service_smoke.py``).  Boots ``python -m repro.serve`` on an
ephemeral port with an on-disk compile-cache tier, connects two TCP
clients, and checks the docs/SERVICE.md acceptance criteria end to end:

* client 1's cold run compiles; client 2's identical request is a warm
  cache hit that executes **zero** compiler passes;
* cold and warm responses are bit-identical — output, modeled elapsed
  time, per-rank clocks, message/byte counters, and the canonical trace
  SHA;
* a second server process over the same cache directory serves the
  request from the **disk** tier, again with zero passes and identical
  results (the compile-once-run-many story across restarts);
* hosted ``mem://`` data written by one session is visible to the next.

Writes ``service_report.json`` for the artifact and exits non-zero on
any violation.
"""

import json
import os
import re
import subprocess
import sys
import time

from repro.service import ServiceClient

WORKLOADS = {
    "heat": ("u = zeros(16, 16);\n"
             "f = ones(16, 16);\n"
             "for it = 1:8\n"
             "  u = u + f * 0.25;\n"
             "end\n"
             "disp(sum(sum(u)));\n"),
    "cg": ("A = ones(12, 12) + 11 * eye(12);\n"
           "x = ones(12, 1);\n"
           "for it = 1:6\n"
           "  x = A * x * 0.01;\n"
           "end\n"
           "disp(sum(x));\n"),
}
NPROCS = 4


def start_server(cache_dir: str) -> tuple[subprocess.Popen, str, int]:
    env = dict(os.environ, PYTHONPATH="src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0",
         "--cache-dir", cache_dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env)
    line = proc.stdout.readline()
    match = re.search(r"listening on ([\d.]+):(\d+)", line)
    if not match:
        proc.kill()
        raise RuntimeError(f"server did not come up: {line!r}")
    return proc, match.group(1), int(match.group(2))


def check_pair(cold: dict, warm: dict, failures: list, label: str) -> None:
    if not warm["cached"] or warm["passes"]:
        failures.append(f"{label}: warm run was not a zero-pass cache hit "
                        f"(cached={warm['cached']}, "
                        f"passes={len(warm['passes'])})")
    for field in ("output", "elapsed", "rank_times", "messages", "bytes",
                  "collectives"):
        if cold[field] != warm[field]:
            failures.append(f"{label}: {field} differs cold vs warm")
    if cold["trace"]["sha"] != warm["trace"]["sha"]:
        failures.append(f"{label}: canonical trace SHA drifted")


def main() -> int:
    cache_dir = os.path.abspath("service_cache")
    failures: list[str] = []
    report: dict = {"nprocs": NPROCS, "workloads": {}}

    proc, host, port = start_server(cache_dir)
    try:
        with ServiceClient.connect(host, port) as one, \
                ServiceClient.connect(host, port) as two:
            for name, src in WORKLOADS.items():
                t0 = time.perf_counter()
                cold = one.run(src, nprocs=NPROCS, trace=True)
                cold_s = time.perf_counter() - t0
                t0 = time.perf_counter()
                warm = two.run(src, nprocs=NPROCS, trace=True)
                warm_s = time.perf_counter() - t0
                check_pair(cold, warm, failures, name)
                report["workloads"][name] = {
                    "key": cold["key"], "output": cold["output"].strip(),
                    "elapsed_virtual": cold["elapsed"],
                    "cold_host_s": cold_s, "warm_host_s": warm_s,
                    "warm_tier": warm["tier"],
                    "trace_sha": cold["trace"]["sha"],
                }
            stats = one.stats()
            report["cache"] = stats["cache"]
            if stats["cache"]["compiles"] != len(WORKLOADS):
                failures.append(
                    f"expected {len(WORKLOADS)} compiles, cache reports "
                    f"{stats['cache']['compiles']}")
            if stats["tracker_installed"]:
                failures.append("session left a memory tracker installed")
            two.shutdown()
    finally:
        proc.wait(timeout=10)

    # restart: a fresh server over the same cache dir must serve every
    # workload from the disk tier without running a single pass
    proc, host, port = start_server(cache_dir)
    try:
        with ServiceClient.connect(host, port) as c:
            for name, src in WORKLOADS.items():
                reply = c.run(src, nprocs=NPROCS, trace=True)
                if not reply["cached"] or reply["tier"] != "disk" \
                        or reply["passes"]:
                    failures.append(f"{name}: restart did not hit the disk "
                                    f"tier (tier={reply['tier']})")
                if reply["trace"]["sha"] != \
                        report["workloads"][name]["trace_sha"]:
                    failures.append(f"{name}: trace SHA drifted across "
                                    "server restart")
                report["workloads"][name]["restart_tier"] = reply["tier"]
            # hosted data round trip across sessions of this server
            c.run("a = ones(4, 4) * 2;\nsave('mem://smoke/a', a);\n",
                  nprocs=2)
        with ServiceClient.connect(host, port) as again:
            reply = again.run("b = load('mem://smoke/a');\n"
                              "disp(sum(sum(b)));\n", nprocs=2)
            if reply["output"].strip() != "32":
                failures.append("hosted mem:// data not shared across "
                                "sessions")
            again.shutdown()
    finally:
        proc.wait(timeout=10)

    report["failures"] = failures
    with open("service_report.json", "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
    for name, row in report["workloads"].items():
        print(f"[service-smoke] {name}: cold {row['cold_host_s'] * 1e3:.0f} "
              f"ms -> warm {row['warm_host_s'] * 1e3:.0f} ms "
              f"({row['warm_tier']} tier; restart: {row['restart_tier']})")
    if failures:
        print("FAILURES:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("[service-smoke] ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
