"""Figure 3 — conjugate-gradient speedup over the MATLAB interpreter.

Paper: "the compiled script executing on 16 CPUs of the [Meiko CS-2]
executes 50 times faster than the interpreter executing the script on a
single CPU"; the Ethernet cluster flattens past one SMP's four CPUs.
"""

from figure_utils import run_speedup_figure


def test_figure3_cg(benchmark, scale, harness):
    fig = run_speedup_figure(3, "cg", benchmark, scale, harness)
    meiko = fig.curves["Meiko CS-2"]
    if scale == "paper":
        # CG scales well: >55% parallel efficiency at 8 Meiko CPUs, and
        # 16 CPUs still beat 8
        assert meiko.at(8) > 0.55 * 8 * meiko.at(1)
        assert meiko.at(16) > meiko.at(8)
