"""Ablation — pass 6b (loop-invariant code motion) on vs off.

A relaxation-style kernel whose inner statement mixes an invariant
product with iteration-dependent work: LICM removes O(steps) broadcasts
and one matrix product from the loop.
"""

from repro.bench.harness import BenchHarness
from repro.bench.workloads import Workload

RELAXATION = Workload("relaxation", "Jacobi-style relaxation", """\
% Damped fixed-point iteration with an invariant coupling matrix.
rand('seed', 41);
n = 192;
A = rand(n, n) / n;
B = rand(n, n) / n;
g = rand(n, 1);
x = zeros(n, 1);
w = rand(8, 8);
for s = 1:40
    C = A * B;                 % invariant product
    x = 0.9 * x + C * g + w(3, 3);
end
chk = sum(x);
fprintf('relaxation chk %.6e\\n', chk);
""")


def test_ablation_licm(benchmark, harness):
    def measure():
        on = harness.otter_time(RELAXATION, nprocs=8, licm=True)
        off = harness.otter_time(RELAXATION, nprocs=8, licm=False)
        return on, off

    on, off = benchmark.pedantic(measure, rounds=1, iterations=1)
    gain = off / on
    print(f"\nAblation (pass 6b LICM): hoisted {on * 1e3:.2f} ms vs "
          f"in-loop {off * 1e3:.2f} ms -> {gain:.2f}x")
    assert gain > 2.0

    stats = harness.compiled(RELAXATION, licm=True).licm_stats
    assert stats.hoisted >= 2  # the product and the broadcast
    benchmark.extra_info["gain"] = round(gain, 2)
