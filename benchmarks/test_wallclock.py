"""Host wall-clock benchmarks of the simulation substrate itself.

Everything else in ``benchmarks/`` reports *modeled* (virtual) seconds;
this module times the *host* — how long compiling and running a workload
actually takes on the machine executing the test suite.  That is the
quantity the vectorized-payload work optimizes, and emitting it to
``BENCH_wallclock.json`` gives subsequent PRs a perf trajectory.

Two kinds of checks:

* ``test_wallclock_trajectory`` — times compile+run for the
  heat-diffusion stencil and the four paper workloads at P in {1, 4, 16}
  and writes ``BENCH_wallclock.json`` at the repo root.
* ``test_alltoall_payload_walk_is_o1`` — pins the structural property
  that makes the hot path fast: the number of ``sizeof`` payload walks
  per alltoall message does not grow with the element count (payloads
  are flat array pairs, sized via ``.nbytes`` in O(1)).
"""

import json
import os
import time

import numpy as np

from repro.bench.workloads import make_workload
from repro.compiler import OtterCompiler
from repro.mpi import MEIKO_CS2, run_spmd
from repro.runtime.context import RuntimeContext

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_wallclock.json")

NPROCS = (1, 4, 16)

#: the heat-diffusion stencil of examples/heat_diffusion.py — the
#: workload whose messaging overhead motivated the vectorized payloads
HEAT_SOURCE = """\
n = 4000;
steps = 150;
x = linspace(0, 2*pi, n);
u = sin(x) + 0.5 * sin(3 * x);
alpha = 0.2;
e0 = sum(u .* u);
for s = 1:steps
    left = circshift(u, 1);
    right = circshift(u, -1);
    u = u + alpha * (left - 2 * u + right);
end
e1 = sum(u .* u);
fprintf('energy %.6f -> %.6f (decay %.4f)\\n', e0, e1, e1 / e0);
"""


def _time_workload(key, source, provider=None):
    t0 = time.perf_counter()
    program = OtterCompiler(provider=provider).compile(source, name=key)
    compile_s = time.perf_counter() - t0
    runs = {}
    for p in NPROCS:
        t0 = time.perf_counter()
        result = program.run(nprocs=p, machine=MEIKO_CS2)
        runs[str(p)] = round(time.perf_counter() - t0, 4)
        assert result.elapsed > 0
    return {"compile_s": round(compile_s, 4), "run_s": runs}


def test_wallclock_trajectory(scale):
    """Time compile+run for the stencil and the four paper workloads,
    and emit BENCH_wallclock.json for the perf trajectory."""
    entries = {"heat": _time_workload("heat", HEAT_SOURCE)}
    for key in ("cg", "ocean", "nbody", "closure"):
        w = make_workload(key, scale=scale)
        entries[key] = _time_workload(key, w.source, provider=w.provider)
    report = {
        "machine_model": MEIKO_CS2.name,
        "scale": scale,
        "nprocs": list(NPROCS),
        "workloads": entries,
        "total_wall_s": round(sum(
            e["compile_s"] + sum(e["run_s"].values())
            for e in entries.values()), 4),
    }
    with open(JSON_PATH, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    for key, entry in entries.items():
        assert entry["compile_s"] > 0, key
        assert all(t > 0 for t in entry["run_s"].values()), key


def _count_sizeof_walks(n, monkeypatch):
    """Run one alltoall-fallback circshift on an n-element vector and
    return how many times the comm layer walked a payload."""
    from repro.mpi import comm as comm_mod
    from repro.mpi import datatypes as dt_mod

    real_sizeof = dt_mod.sizeof
    calls = {"n": 0}

    def counting_sizeof(obj):
        calls["n"] += 1
        return real_sizeof(obj)

    # patch both entry points: comm holds a direct reference, and the
    # recursive walk inside sizeof resolves through datatypes' globals —
    # so every payload-tree node visited is counted exactly once
    monkeypatch.setattr(comm_mod, "sizeof", counting_sizeof)
    monkeypatch.setattr(dt_mod, "sizeof", counting_sizeof)

    def fn(comm):
        rt = RuntimeContext(comm, seed=1)
        v = rt.rand(float(n), 1.0)
        # a shift of n/2 exceeds every block: forced alltoall fallback
        rt.circshift(v, float(n // 2))

    run_spmd(4, MEIKO_CS2, fn)
    return calls["n"]


def test_alltoall_payload_walk_is_o1(monkeypatch):
    """Payload-size accounting per alltoall message must not scale with
    the element count: packed (indices, values) array pairs are sized in
    O(1) via .nbytes, never walked element by element."""
    small = _count_sizeof_walks(256, monkeypatch)
    large = _count_sizeof_walks(16384, monkeypatch)
    assert small > 0
    assert large == small, (
        f"sizeof walks grew with element count: {small} -> {large}")
