"""Host wall-clock benchmarks of the simulation substrate itself.

Everything else in ``benchmarks/`` reports *modeled* (virtual) seconds;
this module times the *host* — how long compiling and running a workload
actually takes on the machine executing the test suite.  That is the
quantity the vectorized-payload work optimizes, and emitting it to
``BENCH_wallclock.json`` gives subsequent PRs a perf trajectory.

Four kinds of checks:

* ``test_wallclock_trajectory`` — times compile+run for the
  heat-diffusion stencil and the four paper workloads at P in {1, 4, 16}
  and writes ``BENCH_wallclock.json`` at the repo root.
* ``test_nprocs_scaling_sweep`` — the lockstep-scheduler sweep: host
  seconds (and host seconds *per simulated rank*) for every paper
  workload at P in {1, 2, 4, 8, 16}, recorded in the JSON's
  ``nprocs_scaling`` section.  Host cost at large P is dominated by each
  rank re-executing the program's Python control flow — inherent to SPMD
  simulation — so the per-rank metric is the one the scheduler drives
  toward "nearly free".
* ``test_fused_vs_lockstep_sweep`` — the rank-fused backend's contract:
  one pass stands in for all P ranks, so host wall-clock at P = 16 must
  stay within 2x of P = 1 for the heat/cg/ocean workloads (lockstep
  grows roughly linearly in P).  Recorded in the JSON's
  ``fused_vs_lockstep`` section alongside the speedup ratios.
* ``test_scheduler_substrate_overhead`` — isolates the communication
  substrate (collectives and ring exchanges with trivial compute) and
  compares the lockstep, threads, and fused backends head-to-head at
  P = 16; the handoff-based scheduler must not be slower than
  free-running threads, and fused must win outright on rank-agnostic
  collective traffic (it folds the exchange in-process).
* ``test_alltoall_payload_walk_is_o1`` — pins the structural property
  that makes the hot path fast: the number of ``sizeof`` payload walks
  per alltoall message does not grow with the element count (payloads
  are flat array pairs, sized via ``.nbytes`` in O(1)).
* ``test_trace_marker_overhead`` — the ``_c.line = N`` source-line
  markers the trace layer relies on must stay plain attribute stores
  when tracing is disabled (the ``trace=None`` default): asserted
  structurally (no descriptor may hide code behind ``line``), with an
  A/B against a marker-stripped clone recorded in the JSON's
  ``trace_overhead`` section as a gross-regression tripwire.

All JSON writes are read-modify-write so the tests may run in any order
(or singly) without clobbering each other's sections.
"""

import json
import os
import time

import numpy as np

from repro.bench.workloads import make_workload
from repro.compiler import OtterCompiler
from repro.mpi import MEIKO_CS2, run_spmd
from repro.runtime.context import RuntimeContext

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_wallclock.json")

NPROCS = (1, 4, 16)

#: the scheduler sweep: every power of two up to the Meiko's 16 CPUs
SWEEP_NPROCS = (1, 2, 4, 8, 16)

#: the heat-diffusion stencil of examples/heat_diffusion.py — the
#: workload whose messaging overhead motivated the vectorized payloads
HEAT_SOURCE = """\
n = 4000;
steps = 150;
x = linspace(0, 2*pi, n);
u = sin(x) + 0.5 * sin(3 * x);
alpha = 0.2;
e0 = sum(u .* u);
for s = 1:steps
    left = circshift(u, 1);
    right = circshift(u, -1);
    u = u + alpha * (left - 2 * u + right);
end
e1 = sum(u .* u);
fprintf('energy %.6f -> %.6f (decay %.4f)\\n', e0, e1, e1 / e0);
"""


def _merge_into_report(section: dict) -> None:
    """Read-modify-write BENCH_wallclock.json: update only the keys this
    test owns, preserving sections written by the other tests."""
    report = {}
    if os.path.exists(JSON_PATH):
        try:
            with open(JSON_PATH) as fh:
                report = json.load(fh)
        except (OSError, json.JSONDecodeError):
            report = {}
    report.update(section)
    with open(JSON_PATH, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")


def _time_workload(key, source, provider=None):
    t0 = time.perf_counter()
    program = OtterCompiler(provider=provider).compile(source, name=key)
    compile_s = time.perf_counter() - t0
    runs = {}
    for p in NPROCS:
        t0 = time.perf_counter()
        result = program.run(nprocs=p, machine=MEIKO_CS2)
        runs[str(p)] = round(time.perf_counter() - t0, 4)
        assert result.elapsed > 0
    return {"compile_s": round(compile_s, 4), "run_s": runs}


def test_wallclock_trajectory(scale):
    """Time compile+run for the stencil and the four paper workloads,
    and emit BENCH_wallclock.json for the perf trajectory."""
    entries = {"heat": _time_workload("heat", HEAT_SOURCE)}
    for key in ("cg", "ocean", "nbody", "closure"):
        w = make_workload(key, scale=scale)
        entries[key] = _time_workload(key, w.source, provider=w.provider)
    _merge_into_report({
        "machine_model": MEIKO_CS2.name,
        "scale": scale,
        "nprocs": list(NPROCS),
        "workloads": entries,
        "total_wall_s": round(sum(
            e["compile_s"] + sum(e["run_s"].values())
            for e in entries.values()), 4),
    })
    for key, entry in entries.items():
        assert entry["compile_s"] > 0, key
        assert all(t > 0 for t in entry["run_s"].values()), key


def test_nprocs_scaling_sweep(scale):
    """Sweep P = 1..16 under the lockstep scheduler and record what one
    extra simulated rank actually costs on the host.

    Honest accounting: total host time DOES grow with P, because each of
    the P ranks re-executes the whole program's Python control flow —
    that re-execution, not scheduling, dominates (profiling shows
    per-rank CPU time ~= wall at P = 16).  What the scheduler makes
    nearly free is everything *around* the program: handoffs replace
    condvar broadcasts and timeout polling, so host-seconds-per-rank
    *falls* as P grows.  Both numbers are recorded; the assertion pins
    the per-rank trend, which is the scheduler's actual contract.
    """
    entries = {}
    sources = {"heat": (HEAT_SOURCE, None)}
    for key in ("cg", "ocean", "nbody", "closure"):
        w = make_workload(key, scale=scale)
        sources[key] = (w.source, w.provider)
    for key, (source, provider) in sources.items():
        program = OtterCompiler(provider=provider).compile(source, name=key)
        wall = {}
        for p in SWEEP_NPROCS:
            best = float("inf")
            for _ in range(2):
                t0 = time.perf_counter()
                result = program.run(nprocs=p, machine=MEIKO_CS2,
                                     backend="lockstep")
                best = min(best, time.perf_counter() - t0)
            assert result.elapsed > 0
            wall[str(p)] = round(best, 4)
        per_rank = {str(p): round(wall[str(p)] / p, 5) for p in SWEEP_NPROCS}
        entries[key] = {
            "wall_s": wall,
            "wall_s_per_rank": per_rank,
            "p16_over_p1": round(wall["16"] / wall["1"], 2),
        }
    # the scheduler contract: an extra simulated rank is cheaper than a
    # full re-run.  Asserted on the aggregate across workloads — the
    # per-workload numbers (recorded below) include single-digit-ms runs
    # whose timing is dominated by host noise under suite load.
    total_p1 = sum(e["wall_s"]["1"] for e in entries.values())
    total_p16_per_rank = sum(e["wall_s"]["16"] for e in entries.values()) / 16
    assert total_p16_per_rank < total_p1, (
        f"per-rank host cost did not amortize: {entries}")
    _merge_into_report({
        "nprocs_scaling": {
            "backend": "lockstep",
            "nprocs": list(SWEEP_NPROCS),
            "metric": "min-of-2 host seconds (and per simulated rank)",
            "workloads": entries,
        },
    })


def test_fused_vs_lockstep_sweep(scale):
    """Sweep P = 1..16 on both the lockstep and fused backends and pin
    the tentpole claim: fused executes the generated program ONCE, so
    its host cost is nearly flat in P while lockstep re-runs the whole
    program P times.

    The assertion is the acceptance bar from the performance-model
    contract: fused P = 16 within 2x of fused P = 1 for heat, cg, and
    ocean.  Every run is also checked to have genuinely stayed fused
    (no silent lockstep fallback padding the numbers) and to report the
    same modeled elapsed time as lockstep — accounting equivalence is
    asserted exhaustively in tests/, but re-checking the headline here
    keeps the benchmark honest.
    """
    sources = {"heat": (HEAT_SOURCE, None)}
    for key in ("cg", "ocean"):
        w = make_workload(key, scale=scale)
        sources[key] = (w.source, w.provider)
    entries = {}
    for key, (source, provider) in sources.items():
        program = OtterCompiler(provider=provider).compile(source, name=key)
        wall = {"lockstep": {}, "fused": {}}
        for p in SWEEP_NPROCS:
            modeled = {}
            for backend in ("lockstep", "fused"):
                best = float("inf")
                for _ in range(3):
                    t0 = time.perf_counter()
                    result = program.run(nprocs=p, machine=MEIKO_CS2,
                                         backend=backend)
                    best = min(best, time.perf_counter() - t0)
                if backend == "fused":
                    assert result.spmd.backend == "fused", (key, p)
                modeled[backend] = result.elapsed
                wall[backend][str(p)] = round(best, 4)
            assert modeled["fused"] == modeled["lockstep"], (key, p)
        ratio = round(wall["fused"]["16"] / wall["fused"]["1"], 2)
        entries[key] = {
            "lockstep_wall_s": wall["lockstep"],
            "fused_wall_s": wall["fused"],
            "fused_p16_over_p1": ratio,
            "speedup_at_p16": round(
                wall["lockstep"]["16"] / wall["fused"]["16"], 2),
        }
        assert wall["fused"]["16"] <= 2.0 * wall["fused"]["1"], (
            f"{key}: fused P=16 host cost not within 2x of P=1: {entries}")
    _merge_into_report({
        "fused_vs_lockstep": {
            "nprocs": list(SWEEP_NPROCS),
            "metric": "min-of-3 host seconds",
            "workloads": entries,
        },
    })


#: the large-world sweep: node-spanning powers of four on the fat tree
SCALING_NPROCS = (16, 64, 256, 1024)


def test_fused_scaling_sweep(scale):
    """The P=1024 scaling claim: with per-rank accounting vectorized into
    numpy arrays, the fused backend's host cost per *simulated rank*
    must not blow up as the world grows — one program pass plus O(P)
    array arithmetic, never O(P) Python loops.

    Sweeps heat/cg/ocean at P in {16, 64, 256, 1024} on the fat-tree
    cluster profile (the 1997 machines cap at 16 CPUs), asserts every
    run genuinely stayed fused, and pins the acceptance bar: host
    seconds per simulated rank at P = 1024 within 4x of P = 16.
    Recorded in the JSON's ``fused_scaling`` section.
    """
    from repro.mpi import FATTREE_CLUSTER

    sources = {"heat": (HEAT_SOURCE, None)}
    for key in ("cg", "ocean"):
        w = make_workload(key, scale=scale)
        sources[key] = (w.source, w.provider)
    entries = {}
    for key, (source, provider) in sources.items():
        program = OtterCompiler(provider=provider).compile(source, name=key)
        wall = {}
        vclock = {}
        for p in SCALING_NPROCS:
            best = float("inf")
            for _ in range(2):
                t0 = time.perf_counter()
                result = program.run(nprocs=p, machine=FATTREE_CLUSTER,
                                     backend="fused")
                best = min(best, time.perf_counter() - t0)
            assert result.spmd.backend == "fused", (key, p)
            wall[str(p)] = round(best, 4)
            vclock[str(p)] = result.elapsed
        per_rank = {str(p): round(wall[str(p)] / p, 6)
                    for p in SCALING_NPROCS}
        entries[key] = {
            "fused_wall_s": wall,
            "wall_s_per_rank": per_rank,
            "per_rank_p1024_over_p16": round(
                per_rank["1024"] / per_rank["16"], 3),
            "modeled_s": {p: round(t, 6) for p, t in vclock.items()},
        }
        assert per_rank["1024"] <= 4.0 * per_rank["16"], (
            f"{key}: per-rank host cost blew up at P=1024: {entries}")
    _merge_into_report({
        "fused_scaling": {
            "machine_model": FATTREE_CLUSTER.name,
            "backend": "fused",
            "nprocs": list(SCALING_NPROCS),
            "metric": "min-of-2 host seconds (and per simulated rank)",
            "workloads": entries,
        },
    })


def test_native_kernels_sweep(scale):
    """The native-tier acceptance bar: fused-backend host wall-clock for
    the elementwise-dominated image-filtering workload must improve
    >= 1.5x with the JIT kernel tier on, bit-identically, and warm runs
    must perform zero recompiles.

    Sweeps heat/cg/ocean/image_filter at P in {1, 4, 16} on the fused
    backend with the tier forced off vs required, min-of-3 each way.
    Every native run is checked against the off run for identical
    output and modeled time (the tier is host-time-only by contract),
    and the warm-cache claim is pinned via the per-run engine counters:
    after the first `require` run, later runs compile nothing and never
    re-read the disk cache.  Only the image filter carries the speedup
    assertion — cg/ocean are dominated by GEMM/reductions, not
    elementwise chains, and their (honest, possibly ~1x) ratios are
    recorded for the trajectory.  Recorded in the JSON's
    ``native_kernels`` section.
    """
    import pytest

    from repro.bench.workloads import image_filter
    from repro.native import get_engine

    if not get_engine().available:
        pytest.skip("no C compiler / cffi: native tier unavailable")

    sources = {
        "image_filter": (image_filter(n=512, steps=8).source, None),
        "heat": (HEAT_SOURCE, None),
    }
    for key in ("cg", "ocean"):
        w = make_workload(key, scale=scale)
        sources[key] = (w.source, w.provider)
    entries = {}
    for key, (source, provider) in sources.items():
        program = OtterCompiler(provider=provider).compile(source, name=key)
        # cold run: compiles (or disk-loads) every kernel once
        cold = program.run(nprocs=4, machine=MEIKO_CS2, backend="fused",
                           native="require")
        wall = {"off": {}, "native": {}}
        speedup = {}
        warm_compiles = 0
        warm_disk = 0
        for p in NPROCS:
            results = {}
            for mode, label in (("off", "off"), ("require", "native")):
                best = float("inf")
                for _ in range(3):
                    t0 = time.perf_counter()
                    result = program.run(nprocs=p, machine=MEIKO_CS2,
                                         backend="fused", native=mode)
                    best = min(best, time.perf_counter() - t0)
                results[label] = result
                wall[label][str(p)] = round(best, 4)
                if label == "native":
                    warm_compiles += result.native["compiles"]
                    warm_disk += result.native["disk_hits"]
            # the tier is host-time-only: output and virtual clock are
            # bit-identical with the numpy path
            assert results["off"].output == results["native"].output, (key, p)
            assert results["off"].elapsed == results["native"].elapsed, \
                (key, p)
            assert results["native"].native["native_calls"] > 0, (key, p)
            speedup[str(p)] = round(
                wall["off"][str(p)] / wall["native"][str(p)], 2)
        # warm-cache contract: after the cold run every kernel is
        # resident in process — zero compiles, zero disk loads
        assert warm_compiles == 0, (key, warm_compiles)
        assert warm_disk == 0, (key, warm_disk)
        entries[key] = {
            "off_wall_s": wall["off"],
            "native_wall_s": wall["native"],
            "speedup": speedup,
            "best_speedup": max(speedup.values()),
            "native_calls_per_run": cold.native["native_calls"],
            "kernels": cold.native["kernels"],
        }
    best = entries["image_filter"]["best_speedup"]
    assert best >= 1.5, (
        f"native tier under the acceptance bar on the elementwise-dominated "
        f"workload: best image-filter speedup {best}x < 1.5x: {entries}")
    _merge_into_report({
        "native_kernels": {
            "backend": "fused",
            "nprocs": list(NPROCS),
            "metric": "min-of-3 host seconds, native off vs require",
            "image_filter_size": {"n": 512, "steps": 8},
            "warm_recompiles": 0,
            "workloads": entries,
        },
    })


def _substrate_programs():
    def collectives(comm):
        for _ in range(200):
            comm.allreduce(1.0)

    def ring(comm):
        buf = np.zeros(8)
        for _ in range(200):
            buf = comm.sendrecv(buf, dest=(comm.rank + 1) % comm.size,
                                source=(comm.rank - 1) % comm.size)

    return {"allreduce_x200": collectives, "ring_sendrecv_x200": ring}


def test_scheduler_substrate_overhead():
    """Head-to-head on the bare communication substrate at P = 16:
    the lockstep scheduler's baton handoffs vs free-running threads on
    a condition variable vs the fused in-process facade.  Lockstep must
    not lose to threads (it replaces broadcast wakeups with exactly one
    futex operation per blocking op).  Fused must beat lockstep outright
    on the rank-agnostic collective program — it folds the exchange
    in-process with zero scheduling.  The ring program reads
    ``comm.rank``, so under fused it exercises the divergence fallback:
    its recorded time is one aborted fused attempt plus a full lockstep
    run, pinned to stay within noise of plain lockstep."""
    timings = {}
    for name, prog in _substrate_programs().items():
        row = {}
        for backend in ("lockstep", "threads", "fused"):
            best = float("inf")
            for _ in range(3):
                t0 = time.perf_counter()
                run_spmd(16, MEIKO_CS2, prog, backend=backend)
                best = min(best, time.perf_counter() - t0)
            row[backend] = round(best * 1e3, 2)
        timings[name] = row
        # generous 1.5x slack: absolute numbers vary across hosts, but
        # lockstep consistently wins by ~2x; losing outright would mean
        # a handoff regression
        assert row["lockstep"] < row["threads"] * 1.5, timings
    # the collective program never observes rank: fused runs it once
    assert timings["allreduce_x200"]["fused"] < \
        timings["allreduce_x200"]["lockstep"], timings
    # the ring program diverges immediately: fallback cost ~= lockstep
    assert timings["ring_sendrecv_x200"]["fused"] < \
        timings["ring_sendrecv_x200"]["lockstep"] * 1.5, timings
    _merge_into_report({
        "scheduler_substrate_ms_p16": {
            "metric": "min-of-3 host milliseconds, 16 ranks",
            "programs": timings,
        },
    })


def _count_sizeof_walks(n, monkeypatch):
    """Run one alltoall-fallback circshift on an n-element vector and
    return how many times the comm layer walked a payload."""
    from repro.mpi import comm as comm_mod
    from repro.mpi import datatypes as dt_mod

    real_sizeof = dt_mod.sizeof
    calls = {"n": 0}

    def counting_sizeof(obj):
        calls["n"] += 1
        return real_sizeof(obj)

    # patch both entry points: comm holds a direct reference, and the
    # recursive walk inside sizeof resolves through datatypes' globals —
    # so every payload-tree node visited is counted exactly once
    monkeypatch.setattr(comm_mod, "sizeof", counting_sizeof)
    monkeypatch.setattr(dt_mod, "sizeof", counting_sizeof)

    def fn(comm):
        rt = RuntimeContext(comm, seed=1)
        v = rt.rand(float(n), 1.0)
        # a shift of n/2 exceeds every block: forced alltoall fallback
        rt.circshift(v, float(n // 2))

    run_spmd(4, MEIKO_CS2, fn)
    return calls["n"]


def test_trace_marker_overhead():
    """The trace layer's compile-time cost with tracing DISABLED: the
    emitted ``_c.line = N`` markers (one attribute store per source
    statement) vs a clone of the same program with every marker stripped
    out.

    The true cost is far below this host's timing noise — heat executes
    ~11k marker stores (~0.5 ms) in a ~190 ms run, i.e. ~0.3%, while
    identical back-to-back runs here differ by 4-8% under load bursts
    (the previously recorded ratio of 0.94, markers *faster* than no
    markers, is that noise).  No wall-clock bar can resolve 0.3% inside
    that, so the contract is asserted structurally — ``line`` must stay
    a plain instance attribute on every comm class, never a property or
    other descriptor that would put code behind each marker — and the
    timed A/B (order-alternated paired ratios, median) is kept as a
    gross-regression tripwire at 15% plus the perf trajectory record in
    BENCH_wallclock.json."""
    import dataclasses
    import re

    from repro.mpi.comm import Comm
    from repro.mpi.fused import FusedComm

    # structural contract: `_c.line = N` must be a bare attribute store
    for cls in (Comm, FusedComm):
        for klass in cls.__mro__:
            desc = klass.__dict__.get("line")
            assert desc is None or not hasattr(desc, "__set__"), (
                f"{cls.__name__}.line became a data descriptor "
                f"({desc!r}); markers are no longer plain stores")

    source = HEAT_SOURCE.replace("steps = 150;", "steps = 450;")
    assert "steps = 450;" in source
    program = OtterCompiler().compile(source, name="heat")
    stripped_source = re.sub(
        r"^[ \t]*_c(?:\.line = \d+| = rt\.comm)\n", "",
        program.python_source, flags=re.MULTILINE)
    assert "_c.line" in program.python_source
    assert "_c.line" not in stripped_source
    stripped = dataclasses.replace(program,
                                   python_source=stripped_source,
                                   _module=None)

    def once(prog):
        # native="off" isolates the marker cost on the stable numpy path;
        # with the JIT tier engaged the body is faster and cold-cache
        # dlopen noise lands unevenly, widening the spread.
        t0 = time.perf_counter()
        result = prog.run(nprocs=4, machine=MEIKO_CS2, backend="lockstep",
                          native="off")
        dt = time.perf_counter() - t0
        return dt, result.elapsed

    # warm both modules (exec + numpy caches), then pair up runs with the
    # order alternating each rep so drift hits both sides equally
    once(program), once(stripped)
    pair_ratios = []
    marked = float("inf")
    plain = float("inf")
    for rep in range(11):
        if rep % 2:
            dt_m, modeled_marked = once(program)
            dt_p, modeled_plain = once(stripped)
        else:
            dt_p, modeled_plain = once(stripped)
            dt_m, modeled_marked = once(program)
        marked = min(marked, dt_m)
        plain = min(plain, dt_p)
        pair_ratios.append(dt_m / dt_p)
    # the markers are trace-only: modeled time must be bit-identical
    assert modeled_marked == modeled_plain
    pair_ratios.sort()
    ratio = pair_ratios[len(pair_ratios) // 2]
    _merge_into_report({
        "trace_overhead": {
            "metric": ("median of 11 order-alternated paired ratios, "
                       "heat(x3 steps) @ P=4, trace disabled, native off"),
            "with_markers_s": round(marked, 4),
            "stripped_s": round(plain, 4),
            "ratio": round(ratio, 4),
        },
    })
    assert ratio <= 1.15, (
        f"disabled-trace marker overhead tripwire (15%, gross-regression "
        f"only — see docstring): {ratio:.4f} (paired ratios {pair_ratios})")


def test_alltoall_payload_walk_is_o1(monkeypatch):
    """Payload-size accounting per alltoall message must not scale with
    the element count: packed (indices, values) array pairs are sized in
    O(1) via .nbytes, never walked element by element."""
    small = _count_sizeof_walks(256, monkeypatch)
    large = _count_sizeof_walks(16384, monkeypatch)
    assert small > 0
    assert large == small, (
        f"sizeof walks grew with element count: {small} -> {large}")
