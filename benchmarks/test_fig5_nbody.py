"""Figure 5 — n-body simulation speedup.

Paper: "the preponderance of O(n) operations limits the opportunities
for speedup through parallel execution."
"""

from figure_utils import MEIKO16_RESULTS, run_speedup_figure


def test_figure5_nbody(benchmark, scale, harness):
    fig = run_speedup_figure(5, "nbody", benchmark, scale, harness)
    meiko = fig.curves["Meiko CS-2"]
    # limited speedup: far below the O(n^3) closure / O(n^2) CG scripts
    if "cg" in MEIKO16_RESULTS:
        assert meiko.at(16) < MEIKO16_RESULTS["cg"]
