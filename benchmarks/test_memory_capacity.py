"""Section 7's memory claim — "larger problems can be solved".

"It is infeasible for the MATLAB interpreter to solve problems where the
aggregate amount of data being manipulated exceeds the primary memory
capacity of a workstation.  In contrast, a parallel computer may have far
more primary memory than an individual workstation."

The run-time library tracks each rank's high-water mark of local
distributed-data bytes.  This benchmark sizes a dense problem that
overflows a 1997 workstation's 128 MB but fits comfortably when its rows
are spread over 16 Meiko nodes.
"""

from repro.bench.workloads import conjugate_gradient
from repro.compiler import compile_source
from repro.mpi import MEIKO_CS2, WORKSTATION_MEMORY

# n = 3072: the matrix alone is 3072^2 * 8 B = 75.5 MB; with the compiler's
# temporaries the single-CPU high-water mark passes the 128 MB workstation.
N = 3072


def test_memory_capacity(benchmark):
    workload = conjugate_gradient(n=N, iters=2)
    program = compile_source(workload.source)

    def measure():
        one = max(program.run(nprocs=1).peak_local_bytes)
        sixteen = max(program.run(nprocs=16).peak_local_bytes)
        return one, sixteen

    one, sixteen = benchmark.pedantic(measure, rounds=1, iterations=1)
    mb = 1024 * 1024
    print(f"\nn={N}: peak local data  1 CPU: {one / mb:7.1f} MB   "
          f"16 CPUs: {sixteen / mb:6.1f} MB   "
          f"(workstation = {WORKSTATION_MEMORY / mb:.0f} MB, "
          f"CS-2 node = {MEIKO_CS2.memory_per_cpu / mb:.0f} MB)")

    # the single workstation cannot hold the problem...
    assert one > WORKSTATION_MEMORY
    # ...but one CS-2 node's share fits with room to spare
    assert sixteen < MEIKO_CS2.memory_per_cpu / 2
    # and distribution is doing the work: near-linear memory scaling
    assert sixteen < one / 8

    benchmark.extra_info["peak_1cpu_mb"] = round(one / mb, 1)
    benchmark.extra_info["peak_16cpu_mb"] = round(sixteen / mb, 1)
