"""Table 1 — survey of MATLAB systems targeting parallel computers.

The table is static data; the benchmark times its regeneration/rendering
and asserts the paper's headline claim: "Only FALCON and Otter generate
parallel code from pure MATLAB."
"""

from repro.bench.figures import table1
from repro.bench.report import render_table1


def test_table1(benchmark):
    rows = benchmark(lambda: table1())
    text = render_table1(rows)

    assert len(rows) == 8
    pure = sorted(r.name for r in rows if r.pure_matlab_parallel)
    assert pure == ["FALCON", "Otter"]
    interpreter_based = [r for r in rows if r.implementation == "Interpreter"]
    assert len(interpreter_based) == 4

    benchmark.extra_info["table"] = text
    print()
    print(text)
