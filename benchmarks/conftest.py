"""Benchmark-suite configuration.

Scale selection: set ``REPRO_BENCH_SCALE=paper`` to run the evaluation at
the paper's problem sizes (the numbers recorded in EXPERIMENTS.md);
the default ``small`` keeps CI fast while preserving every qualitative
shape that is asserted.

Each benchmark times the *harness* (wall-clock of the simulation) with
pytest-benchmark and reports the *modeled* quantities (speedups over the
MathWorks-interpreter model) through ``benchmark.extra_info``, which is
what reproduces the paper's tables/figures.
"""

import os

import pytest

from repro.bench.harness import BenchHarness


def pytest_configure(config):
    config.addinivalue_line("markers",
                            "paper_scale: exact paper problem sizes")


@pytest.fixture(scope="session")
def scale():
    return os.environ.get("REPRO_BENCH_SCALE", "small")


@pytest.fixture(scope="session")
def paper_scale(scale):
    return scale == "paper"


@pytest.fixture(scope="session")
def harness():
    return BenchHarness()
