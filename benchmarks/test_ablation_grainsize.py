"""Ablation — grain size vs speedup (the paper's summary claim).

"When the script calls for operations with complexity O(n^2) to be
performed on matrices containing several hundred thousand elements or
more, the performance improvement over The MathWorks interpreter can be
significant."  Sweep the CG problem size and check speedup at 8 CPUs
grows monotonically with n on the Meiko model, and that the Ethernet
cluster needs far bigger problems than the Meiko to profit.
"""

from repro.bench.workloads import conjugate_gradient
from repro.mpi import MEIKO_CS2, SPARC20_CLUSTER

SIZES = (128, 384, 1024)


def test_ablation_grainsize(benchmark, harness):
    def measure():
        table = {}
        for n in SIZES:
            w = conjugate_gradient(n=n, iters=10)
            t_interp = harness.interpreter_time(w, MEIKO_CS2)
            t_meiko = harness.otter_time(w, nprocs=8, machine=MEIKO_CS2)
            t_cl_i = harness.interpreter_time(w, SPARC20_CLUSTER)
            t_cluster = harness.otter_time(w, nprocs=8,
                                           machine=SPARC20_CLUSTER)
            table[n] = (t_interp / t_meiko, t_cl_i / t_cluster)
        return table

    table = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    for n, (meiko, cluster) in table.items():
        print(f"n={n:5d}  meiko@8 {meiko:6.2f}x   cluster@8 {cluster:6.2f}x")

    meiko_curve = [table[n][0] for n in SIZES]
    cluster_curve = [table[n][1] for n in SIZES]
    # speedup grows with grain on the Meiko
    assert meiko_curve == sorted(meiko_curve)
    # the cluster lags the Meiko at every size at 8 CPUs (inter-node wire)
    for m, c in zip(meiko_curve, cluster_curve):
        assert c < m
    benchmark.extra_info["table"] = {
        str(n): [round(v, 2) for v in vals] for n, vals in table.items()}
