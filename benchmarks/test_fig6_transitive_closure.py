"""Figure 6 — transitive-closure speedup.

Paper: "The compiled program executes 78 times faster on 16 nodes of the
Meiko CS-2 than the interpreted program executes on a single processor"
— the best of the four applications, because O(n^3) multiplications give
the largest grain.  This file also checks the cross-figure ordering
closure > cg > nbody >= ocean at 16 Meiko CPUs.
"""

from figure_utils import MEIKO16_RESULTS, run_speedup_figure


def test_figure6_closure(benchmark, scale, harness):
    fig = run_speedup_figure(6, "closure", benchmark, scale, harness)
    meiko = fig.curves["Meiko CS-2"]
    assert meiko.at(16) > meiko.at(8) > meiko.at(4)

    # cross-figure ordering (paper: 78x > 50x > ~13x >= ~8x)
    r = MEIKO16_RESULTS
    if {"cg", "nbody", "ocean"} <= set(r):
        assert r["closure"] > r["cg"]
        assert r["cg"] > r["nbody"]
        assert r["nbody"] >= r["ocean"] * 0.9
