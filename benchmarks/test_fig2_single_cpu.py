"""Figure 2 — relative single-CPU performance of the MathWorks
interpreter, the MATCOM compiler, and Otter on the four benchmarks.

Shape claims asserted (paper, Section 5):
* Otter always outperforms the interpreter;
* Otter vs MATCOM splits 2-2 — Otter wins the elementwise-heavy scripts
  (ocean engineering, n-body), MATCOM the dense-kernel scripts
  (conjugate gradient, transitive closure).
"""

from repro.bench.calibration import FIG2_CLAIMS
from repro.bench.figures import figure2
from repro.bench.report import render_figure2


def test_figure2(benchmark, scale, harness):
    fig = benchmark.pedantic(
        lambda: figure2(scale=scale, harness=harness),
        rounds=1, iterations=1)
    text = render_figure2(fig)
    print()
    print(text)

    # claim 1: the compiler always beats the interpreter
    assert fig.otter_beats_interpreter_everywhere()
    band = FIG2_CLAIMS["otter_over_interp"]
    for key, result in fig.results.items():
        assert band.holds(result.relative["otter"]), (key, result.relative)

    # claim 2: the 2-2 split against MATCOM, with the right winners
    assert fig.split_vs_matcom() == FIG2_CLAIMS["split"]
    for key in FIG2_CLAIMS["otter_wins"]:
        rel = fig.results[key].relative
        assert rel["otter"] > rel["matcom"], key
    for key in FIG2_CLAIMS["matcom_wins"]:
        rel = fig.results[key].relative
        assert rel["matcom"] > rel["otter"], key

    benchmark.extra_info["figure"] = text
    benchmark.extra_info["relative"] = {
        k: {s: round(v, 3) for s, v in r.relative.items()}
        for k, r in fig.results.items()}
