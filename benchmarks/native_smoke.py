"""CI native-tier smoke: prove the JIT tier engages, stays bit-identical,
and reuses its kernel cache.

Run as a script (``PYTHONPATH=src:benchmarks python
benchmarks/native_smoke.py``).  Compiles the elementwise-dominated
image-filtering workload, runs it fused at P=4 with the tier forced off
and forced on (twice, to exercise the warm path), and checks:

* output and virtual clock are identical off vs on;
* the tier actually served calls (``require`` would have raised
  otherwise anyway);
* the warm run performs **zero** compiles and zero disk loads — every
  kernel is already resident.

Writes a hit-rate table to ``native_report.md`` (appended to
``$GITHUB_STEP_SUMMARY`` by the workflow) plus ``native_report.json``
for the artifact, and exits non-zero on any violation.
"""

import json
import os
import sys
import time

from repro.bench.workloads import image_filter
from repro.compiler import OtterCompiler
from repro.mpi import MEIKO_CS2


def main() -> int:
    workload = image_filter(n=128, steps=4)
    program = OtterCompiler().compile(workload.source, name=workload.key)

    def timed(native):
        t0 = time.perf_counter()
        result = program.run(nprocs=4, machine=MEIKO_CS2, backend="fused",
                             native=native)
        return time.perf_counter() - t0, result

    off_s, off = timed("off")
    cold_s, cold = timed("require")
    warm_s, warm = timed("require")

    failures = []
    if off.output != cold.output or off.output != warm.output:
        failures.append("output differs between native off/on")
    if off.elapsed != cold.elapsed or off.elapsed != warm.elapsed:
        failures.append("virtual clock differs between native off/on")
    if cold.native["native_calls"] == 0:
        failures.append("native tier never served a call")
    if warm.native["compiles"] != 0:
        failures.append(f"warm run recompiled "
                        f"{warm.native['compiles']} kernels")
    if warm.native["disk_hits"] != 0:
        failures.append("warm run re-read the disk cache")

    calls = warm.native["native_calls"]
    hits = warm.native["mem_hits"]
    rows = [
        "### Native kernel tier smoke (image filter, fused, P=4)",
        "",
        "| run | host s | native calls | compiles | disk hits |"
        " warm hits |",
        "|---|---|---|---|---|---|",
        f"| native off | {off_s:.3f} | — | — | — | — |",
        f"| cold | {cold_s:.3f} | {cold.native['native_calls']} |"
        f" {cold.native['compiles']} | {cold.native['disk_hits']} |"
        f" {cold.native['mem_hits']} |",
        f"| warm | {warm_s:.3f} | {calls} | {warm.native['compiles']} |"
        f" {warm.native['disk_hits']} | {hits} |",
        "",
        f"warm in-process hit rate: **{hits}/{calls}"
        f" = {100.0 * hits / max(calls, 1):.1f}%**;"
        f" virtual clock identical off/on: "
        f"**{off.elapsed == warm.elapsed}**",
    ]
    report = "\n".join(rows) + "\n"
    print(report)
    with open("native_report.md", "w", encoding="utf-8") as fh:
        fh.write(report)
    with open("native_report.json", "w", encoding="utf-8") as fh:
        json.dump({
            "off_wall_s": round(off_s, 4),
            "cold_wall_s": round(cold_s, 4),
            "warm_wall_s": round(warm_s, 4),
            "cold": cold.native,
            "warm": warm.native,
            "kernel_cache": os.environ.get("REPRO_KERNEL_CACHE", ""),
        }, fh, indent=2)
        fh.write("\n")
    if failures:
        for line in failures:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    print("native smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
