"""CI scaling smoke: fused heat + cg at P=256 on the fat-tree profile.

Run as a script (``PYTHONPATH=src:benchmarks python
benchmarks/scaling_smoke.py``).  Guards the vectorized per-rank
accounting: the fused backend must stay fused (no silent lockstep
fallback) at a node-spanning world size, finish each workload inside a
hard wall-clock budget, and keep host-seconds-per-simulated-rank below
an absolute ceiling — the quantity the numpy rank arrays make nearly
free.  Writes the sweep to ``scaling_report.json`` for the CI artifact
and exits non-zero on any violation so the job fails loudly.
"""

import json
import sys
import time

from test_wallclock import HEAT_SOURCE

from repro.bench.workloads import make_workload
from repro.compiler import OtterCompiler
from repro.mpi import FATTREE_CLUSTER

NPROCS = 256

#: hard per-workload host budget (seconds).  Local min-of-2 runs land
#: near 0.06s (heat) / 0.17s (cg) at P=256; 10s absorbs slow CI hosts
#: while still catching any return to O(P) Python-loop accounting,
#: which costs minutes at this world size.
WALL_BUDGET_S = 10.0

#: per-simulated-rank ceiling (seconds/rank).  Locally ~0.0002-0.0007;
#: an order-of-magnitude regression on a slow runner still fits, a
#: de-vectorization does not.
PER_RANK_BUDGET_S = 0.02


def main() -> int:
    cg = make_workload("cg", scale="small")
    jobs = [("heat", HEAT_SOURCE, None), ("cg", cg.source, cg.provider)]
    payload, failures = {}, []
    for name, source, provider in jobs:
        program = OtterCompiler(provider=provider).compile(source, name=name)
        best = float("inf")
        for _ in range(2):
            t0 = time.perf_counter()
            result = program.run(nprocs=NPROCS, machine=FATTREE_CLUSTER,
                                 backend="fused")
            best = min(best, time.perf_counter() - t0)
        per_rank = best / NPROCS
        payload[name] = {
            "nprocs": NPROCS,
            "machine": FATTREE_CLUSTER.name,
            "backend": result.spmd.backend,
            "wall_s": round(best, 4),
            "wall_s_per_rank": round(per_rank, 6),
            "modeled_s": result.elapsed,
        }
        if result.spmd.backend != "fused":
            failures.append(f"{name}: fell back to "
                            f"{result.spmd.backend} at P={NPROCS}")
        if best > WALL_BUDGET_S:
            failures.append(f"{name}: {best:.2f}s exceeds the "
                            f"{WALL_BUDGET_S:.0f}s wall budget")
        if per_rank > PER_RANK_BUDGET_S:
            failures.append(f"{name}: {per_rank:.4f}s/rank exceeds the "
                            f"{PER_RANK_BUDGET_S}s/rank ceiling")
        print(f"[scaling-smoke] {name}: P={NPROCS} fused in {best:.3f}s "
              f"({per_rank * 1e3:.3f} ms/rank, "
              f"modeled {result.elapsed:.4f}s)")

    with open("scaling_report.json", "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    for failure in failures:
        print(f"[scaling-smoke] FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
