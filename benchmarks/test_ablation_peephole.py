"""Ablation — pass 6 (peephole) on vs off.

The paper motivates the pass as replacing "a sequence of run-time library
calls ... by a single call".  The biggest win is the fused ``A' * B``
(transpose+multiply), which avoids materializing/gathering the transpose;
a normal-equations gradient iteration is the showcase.  CG's vector dots
also fuse, but vector transposes are layout-free in this runtime, so the
effect there is small — which the benchmark records too.
"""

from repro.bench.harness import BenchHarness
from repro.bench.workloads import Workload, make_workload

NORMAL_EQS = Workload("normal_eqs", "Normal equations gradient", """\
% Gradient iterations on the least-squares normal equations.
rand('seed', 31);
m = 1024;
n = 256;
A = rand(m, n);
xtrue = ones(n, 1);
b = A * xtrue;
x = zeros(n, 1);
mu = 0.5 / m;
for k = 1:30
    r = A * x - b;
    g = A' * r;                      % <- transpose + multiply fusion
    x = x - mu * g;
end
err = max(abs(x - xtrue));
fprintf('normal-eqs err %.3e\\n', err);
""")


def test_ablation_peephole(benchmark, harness):
    def measure():
        on = harness.otter_time(NORMAL_EQS, nprocs=8, peephole=True)
        off = harness.otter_time(NORMAL_EQS, nprocs=8, peephole=False)
        return on, off

    on, off = benchmark.pedantic(measure, rounds=1, iterations=1)
    gain = off / on
    print(f"\nAblation (pass 6 peephole): fused {on * 1e3:.2f} ms vs "
          f"unfused {off * 1e3:.2f} ms -> {gain:.2f}x")

    # the fused A'*r must be a clear win
    assert gain > 1.3

    stats = harness.compiled(NORMAL_EQS, peephole=True).peephole_stats
    assert stats.transpose_fused == 1

    # CG's dots fuse too, but must never get *slower*
    cg = make_workload("cg", scale="small")
    cg_on = harness.otter_time(cg, nprocs=8, peephole=True)
    cg_off = harness.otter_time(cg, nprocs=8, peephole=False)
    assert cg_on <= cg_off * 1.01
    benchmark.extra_info["normal_eqs_gain"] = round(gain, 3)
    benchmark.extra_info["cg_gain"] = round(cg_off / cg_on, 4)
