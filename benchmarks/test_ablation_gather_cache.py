"""Ablation — replicate-on-first-use gather caching in the run-time.

The paper's run-time library re-gathers a distributed operand every time
a communication-requiring operation needs it replicated.  Because the
reproduction's MATRIX values are immutable, the gathered replica can be
memoized on the descriptor; this benchmark measures how much of the
modeled communication that recovers on a product-heavy kernel (default
remains OFF to keep the figure calibration paper-faithful).
"""

from repro.compiler import compile_source

SRC = """\
rand('seed', 44);
n = 192;
B = rand(n, n);
A = rand(n, n);
C = rand(n, n);
acc = zeros(n, n);
for k = 1:12
    acc = acc + A * B + C * B;
end
chk = sum(sum(acc));
fprintf('gather-cache chk %.6e\\n', chk);
"""


def test_ablation_gather_cache(benchmark):
    program = compile_source(SRC, licm=False)  # keep products in the loop

    def measure():
        off = program.run(nprocs=8, cache_gathers=False)
        on = program.run(nprocs=8, cache_gathers=True)
        return off, on

    off, on = benchmark.pedantic(measure, rounds=1, iterations=1)
    gain = off.elapsed / on.elapsed
    ag_off = off.spmd.collective_counts.get("allgather", 0)
    ag_on = on.spmd.collective_counts.get("allgather", 0)
    print(f"\nAblation (gather cache): {off.elapsed * 1e3:.1f} ms "
          f"({ag_off} allgathers) vs {on.elapsed * 1e3:.1f} ms "
          f"({ag_on} allgathers) -> {gain:.2f}x")

    assert on.workspace["chk"] == off.workspace["chk"]
    assert ag_on < ag_off / 2
    assert gain > 1.05
    benchmark.extra_info["gain"] = round(gain, 3)
    benchmark.extra_info["allgathers"] = [ag_off, ag_on]
