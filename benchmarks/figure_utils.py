"""Shared machinery for the Figure 3-6 speedup benchmarks."""

from repro.bench.calibration import (
    CLUSTER_PLATEAU_FACTOR,
    FIG_MEIKO16_BANDS,
)
from repro.bench.figures import speedup_figure
from repro.bench.report import render_speedup_figure

MEIKO = "Meiko CS-2"
ENTERPRISE = "Sun Enterprise 4000"
CLUSTER = "SPARCserver-20 cluster"

#: cross-figure record of Meiko-16 speedups (filled as figures run)
MEIKO16_RESULTS: dict[str, float] = {}


def run_speedup_figure(number, workload_key, benchmark, scale, harness):
    fig = benchmark.pedantic(
        lambda: speedup_figure(number, scale=scale, harness=harness),
        rounds=1, iterations=1)
    text = render_speedup_figure(fig)
    print()
    print(text)

    meiko = fig.curves[MEIKO]
    enterprise = fig.curves[ENTERPRISE]
    cluster = fig.curves[CLUSTER]

    # universal shape claims (both scales)
    # 1. compiled parallel code beats the interpreter on every machine at
    #    its sweet spot (2-4 CPUs at least)
    assert meiko.at(4) > 1.0
    assert enterprise.at(4) > 1.0
    # 2. the Ethernet cluster is damped beyond one 4-CPU SMP
    assert cluster.at(16) < CLUSTER_PLATEAU_FACTOR * cluster.at(4)
    # 3. the Meiko "generally achieves greater speedup than the other two"
    assert meiko.at(16) > cluster.at(16)

    if scale == "paper":
        # 4. at the paper's problem sizes, speedup grows 1 -> 4 CPUs on
        #    every machine (grain still dominates communication)
        for curve in (meiko, enterprise, cluster):
            assert curve.at(4) > curve.at(1)
        band = FIG_MEIKO16_BANDS[workload_key]
        assert band.holds(meiko.at(16)), (
            f"{workload_key}: Meiko-16 speedup {meiko.at(16):.1f} outside "
            f"the paper band {band!r}")

    MEIKO16_RESULTS[workload_key] = meiko.at(16)
    benchmark.extra_info["figure"] = text
    benchmark.extra_info["meiko16"] = round(meiko.at(16), 2)
    benchmark.extra_info["speedups"] = {
        name: [round(s, 2) for s in curve.speedups]
        for name, curve in fig.curves.items()}
    return fig
