"""CI tuning smoke: tune heat + cg at P=4 under a small budget.

Run as a script (``PYTHONPATH=src python benchmarks/tuning_smoke.py``).
Asserts the autotuner's floor — the tuned plan never regresses the
default — and writes the full plan reports to ``tuning_report.json`` /
``tuning_report.txt`` for the CI artifact.  Exits non-zero on any
violation so the job fails loudly.
"""

import json
import sys

from test_wallclock import HEAT_SOURCE

from repro.bench.workloads import make_workload
from repro.mpi.machine import MEIKO_CS2
from repro.tuning import tune_program

NPROCS = 4
BUDGET = 32


def main() -> int:
    cg = make_workload("cg", scale="small")
    jobs = [("heat", HEAT_SOURCE, None), ("cg", cg.source, cg.provider)]
    payload, text, failures = {}, [], []
    for name, source, provider in jobs:
        tuned = tune_program(source, nprocs=NPROCS, machine=MEIKO_CS2,
                             budget=BUDGET, provider=provider, name=name)
        payload[name] = tuned.to_json()
        text.append(tuned.report())
        text.append("")
        if tuned.improvement < 0.0:
            failures.append(f"{name}: tuned plan regressed "
                            f"({100 * tuned.improvement:+.3f}%)")
        print(f"[tuning-smoke] {name}: {len(tuned.candidates)} candidates, "
              f"{100 * tuned.improvement:+.3f}% vclock, "
              f"best: {tuned.best.summary}")

    with open("tuning_report.json", "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    with open("tuning_report.txt", "w") as fh:
        fh.write("\n".join(text))

    for failure in failures:
        print(f"[tuning-smoke] FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
