"""Quickstart: compile a MATLAB script and run it on simulated parallel
machines.

Run:  python examples/quickstart.py
"""

from repro import OtterCompiler
from repro.mpi import MEIKO_CS2, SPARC20_CLUSTER, SUN_ENTERPRISE

SCRIPT = """\
% Estimate pi by numerically integrating 4/(1+x^2) over [0, 1].
n = 200000;
h = 1.0 / n;
x = h * ((1:n) - 0.5);
fx = 4.0 ./ (1.0 + x .* x);
pi_est = h * sum(fx);
fprintf('pi ~= %.10f (error %.2e)\\n', pi_est, abs(pi_est - pi));
"""


def main() -> None:
    compiler = OtterCompiler()
    program = compiler.compile(SCRIPT, name="quickstart")

    print("=== compiled SPMD C (what the paper's backend emits) ===")
    for line in program.c_source.splitlines()[:28]:
        print(line)
    print("    ...\n")

    print("=== execution on the three modeled architectures ===")
    for machine in (MEIKO_CS2, SUN_ENTERPRISE, SPARC20_CLUSTER):
        t1 = program.run(nprocs=1, machine=machine).elapsed
        best_p = min(8, machine.max_cpus)
        result = program.run(nprocs=best_p, machine=machine)
        print(f"{machine.name:26s} 1 CPU: {t1 * 1e3:8.2f} ms   "
              f"{best_p} CPUs: {result.elapsed * 1e3:8.2f} ms   "
              f"(self-speedup {t1 / result.elapsed:4.1f}x)")
        if machine is MEIKO_CS2:
            print("  program output:", result.output.strip())


if __name__ == "__main__":
    main()
