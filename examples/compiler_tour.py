"""A guided tour of the seven compiler passes on one statement.

Shows tokens, the resolved AST decision (index vs call), inferred types,
the statement-level IR after rewriting/guarding/peephole, and both
backends' output for the paper's own worked example:

    a = b * c + d(i,j);

Run:  python examples/compiler_tour.py
"""

from repro import OtterCompiler
from repro.frontend import tokenize

SCRIPT = """\
b = rand(64, 64);
c = rand(64, 64);
d = rand(64, 64);
i = 2;
j = 3;
a = b * c + d(i,j);
a(i,j) = a(i,j) / d(j,i);
disp(sum(sum(a)));
"""


def main() -> None:
    print("=== pass 1: scanning (excerpt) ===")
    toks = tokenize("a = b * c + d(i,j);")
    print("  " + " ".join(t.kind.name for t in toks))

    program = OtterCompiler().compile(SCRIPT, name="tour")

    print("\n=== pass 3: inferred attributes ===")
    for name, vtype in sorted(program.types.script.var_types.items()):
        print(f"  {name:3s} : {vtype!r}")

    print("\n=== passes 4-6: statement-level IR ===")
    print(program.ir_dump())

    print(f"\n(peephole: {program.peephole_stats.transpose_fused} "
          f"transpose+multiply fusions, "
          f"{program.peephole_stats.cse_removed} broadcasts CSE'd)")

    print("\n=== pass 7a: generated SPMD C ===")
    print(program.c_source)

    print("=== pass 7b: generated SPMD Python (executable) ===")
    print(program.python_source)

    print("=== execution (4 simulated CPUs) ===")
    result = program.run(nprocs=4)
    print(result.output.strip())


if __name__ == "__main__":
    main()
