"""Ocean engineering: Morrison-equation wave force on a submerged sphere.

The paper's second benchmark (from OSU's Department of Civil Engineering).
This example runs the kernel through all three systems — the MATLAB
interpreter, the MATCOM-like sequential compiler, and Otter — and then
sweeps processor counts, reproducing the "small data sets parallelize
poorly" lesson of Figure 4.

Run:  python examples/ocean_wave_force.py
"""

from repro.baselines import run_matcom
from repro.bench import BenchHarness, make_workload
from repro.mpi import MEIKO_CS2


def main() -> None:
    workload = make_workload("ocean", scale="small")
    harness = BenchHarness()

    print("=== the MATLAB script ===")
    for line in workload.source.splitlines()[:18]:
        print("   ", line)
    print("    ...\n")

    single = harness.single_cpu(workload, MEIKO_CS2)
    rel = single.relative
    print("=== single CPU (interpreter = 1.0) ===")
    print(f"MathWorks interpreter : 1.00   ({single.interp_time:.3f} s)")
    print(f"MATCOM compiler       : {rel['matcom']:.2f}   "
          f"({single.matcom_time:.3f} s)")
    print(f"Otter compiler        : {rel['otter']:.2f}   "
          f"({single.otter_time:.3f} s)")
    print("program output:", single.output.strip(), "\n")

    print("=== parallel speedup over the interpreter (Meiko CS-2) ===")
    curve = harness.speedup_curve(workload, MEIKO_CS2)
    for p, s in zip(curve.nprocs, curve.speedups):
        bar = "#" * max(int(s * 2), 1)
        print(f"{p:3d} CPUs  {s:5.1f}x  {bar}")
    print("\nO(n) operations on a small data set: communication overhead"
          "\neats the gains — exactly the paper's Figure 4 story.")


if __name__ == "__main__":
    main()
