"""Image filtering over distributed rows — the native kernel tier's demo.

The workload is the MatlabMPI benchmark family's image filter ("300x
Faster Matlab using MatlabMPI"): a cross-stencil blur, an unsharp
mask, a smoothstep tone curve, and a gradient-magnitude edge blend
over an n x n image.  The 2-D stencil becomes ``circshift(img, [k 0])``
across the distributed rows and ``circshift(img, [0 k])`` within them
(a purely local roll under the row-contiguous distribution); everything
between the shifts is fused elementwise chains — exactly the shape the
native tier JIT-compiles into single C loops (see docs/NATIVE.md).

The demo runs the same program twice on the fused backend — native
kernels off, then on — and shows that the modeled numbers are
bit-identical while host wall-clock drops.

Run:  python examples/image_filter.py
"""

import time

from repro import OtterCompiler
from repro.bench.workloads import image_filter
from repro.mpi import MEIKO_CS2


def main() -> None:
    workload = image_filter(n=384, steps=6)
    program = OtterCompiler().compile(workload.source, name=workload.key)

    print("=== filter check (4 CPUs, Meiko model) ===")
    result = program.run(nprocs=4, machine=MEIKO_CS2, backend="fused")
    print(result.output.strip())
    print("collectives used:", dict(result.spmd.collective_counts))

    print("\n=== native kernel tier: host wall-clock, same modeled run ===")
    rows = []
    for mode in ("off", "auto"):
        t0 = time.perf_counter()
        res = program.run(nprocs=4, machine=MEIKO_CS2, backend="fused",
                          native=mode)
        host = time.perf_counter() - t0
        rows.append((mode, host, res))
    (off_mode, off_host, off_res), (on_mode, on_host, on_res) = rows
    print(f"native={off_mode!r}: {off_host * 1e3:8.1f} ms host, "
          f"{off_res.elapsed * 1e3:.3f} ms modeled")
    stats = on_res.native or {}
    print(f"native={on_mode!r}: {on_host * 1e3:8.1f} ms host, "
          f"{on_res.elapsed * 1e3:.3f} ms modeled "
          f"({stats.get('native_calls', 0)} native calls, "
          f"{stats.get('compiles', 0)} kernels compiled)")
    same = (off_res.output == on_res.output
            and off_res.elapsed == on_res.elapsed)
    print(f"bit-identical output + virtual clock: {same}; "
          f"host speedup {off_host / max(on_host, 1e-9):.2f}x "
          "(second run reuses the on-disk kernel cache)")


if __name__ == "__main__":
    main()
