"""Grain-size scaling study: when does parallel MATLAB pay off?

The paper's summary: "When the script calls for operations with
complexity O(n^2) to be performed on matrices containing several hundred
thousand elements or more, the performance improvement over The MathWorks
interpreter can be significant."  This example sweeps the conjugate-
gradient problem size and shows the speedup crossover on each machine.

Run:  python examples/scaling_study.py
"""

from repro.bench import BenchHarness, conjugate_gradient
from repro.mpi import MEIKO_CS2, SPARC20_CLUSTER, SUN_ENTERPRISE

SIZES = (128, 256, 512, 1024)
P = 8


def main() -> None:
    harness = BenchHarness()
    print(f"CG speedup over the interpreter at P={P} "
          f"as the system size n grows\n")
    header = f"{'n':>6s}" + "".join(
        f"{m.name:>26s}" for m in (MEIKO_CS2, SUN_ENTERPRISE,
                                   SPARC20_CLUSTER))
    print(header)
    print("-" * len(header))
    for n in SIZES:
        workload = conjugate_gradient(n=n, iters=10)
        row = [f"{n:6d}"]
        for machine in (MEIKO_CS2, SUN_ENTERPRISE, SPARC20_CLUSTER):
            t_interp = harness.interpreter_time(workload, machine)
            t_par = harness.otter_time(workload, nprocs=P, machine=machine)
            row.append(f"{t_interp / t_par:25.1f}x")
        print("".join(row))
    print("\nBigger matrices -> bigger grain -> less relative "
          "communication -> better speedup;\nthe Ethernet cluster needs far "
          "larger problems than the Meiko to break even.")


if __name__ == "__main__":
    main()
