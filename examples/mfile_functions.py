"""User M-file functions: a small numerical model split across M-files.

Demonstrates pass 2 pulling reachable user functions into the program
(without inlining them, unlike FALCON), interprocedural type inference,
and the generated code calling them SPMD-style.

Run:  python examples/mfile_functions.py
"""

from repro import OtterCompiler
from repro.frontend import DictProvider
from repro.mpi import MEIKO_CS2

MFILES = {
    # power-method estimate of the dominant eigenvalue
    "powmeth": """\
function [lam, v] = powmeth(A, iters)
v = ones(size(A, 1), 1);
v = v / norm(v);
lam = 0;
for k = 1:iters
    w = A * v;
    lam = v' * w;
    v = w / norm(w);
end
""",
    # normalized row sums via a helper
    "rowmean": """\
function m = rowmean(A)
m = (A * ones(size(A, 2), 1)) / size(A, 2);
""",
}

SCRIPT = """\
n = 300;
rand('seed', 5);
A = rand(n, n);
A = (A + A') / 2 + n * eye(n);
[lam, v] = powmeth(A, 40);
resid = norm(A * v - lam * v);
rm = rowmean(A);
fprintf('dominant eigenvalue %.6f (residual %.2e)\\n', lam, resid);
fprintf('mean row-mean %.6f\\n', mean(rm));
"""


def main() -> None:
    compiler = OtterCompiler(provider=DictProvider(MFILES))
    program = compiler.compile(SCRIPT, name="mfile_demo")

    print("=== inferred types (pass 3, across M-file boundaries) ===")
    for name in ("A", "lam", "v", "rm"):
        print(f"  {name:4s} : {program.types.script.var_types[name]!r}")
    for fname, types in program.types.functions.items():
        print(f"  function {fname}: "
              + ", ".join(f"{k}={v!r}" for k, v in
                          sorted(types.var_types.items()))[:90] + " ...")

    print("\n=== run on 8 CPUs of the Meiko model ===")
    result = program.run(nprocs=8, machine=MEIKO_CS2)
    print(result.output.strip())
    print(f"modeled time: {result.elapsed * 1e3:.2f} ms; "
          f"messages sent: {result.spmd.messages_sent}, "
          f"collectives: {result.spmd.collectives}")


if __name__ == "__main__":
    main()
