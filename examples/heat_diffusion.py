"""1-D heat diffusion: a stencil computation through vector shifts.

Stencils are the communication pattern the paper's ocean script hints at
(vector shifts): each time step needs every point's neighbours, which the
run-time library realizes with boundary exchange inside ``circshift``.
The example shows how the modeled cost breaks down into collectives and
how the three architectures compare.

Run:  python examples/heat_diffusion.py
"""

from repro import OtterCompiler
from repro.mpi import MEIKO_CS2, SPARC20_CLUSTER, SUN_ENTERPRISE

SCRIPT = """\
% Explicit-Euler heat diffusion on a periodic 1-D rod.
n = 4000;
steps = 150;
x = linspace(0, 2*pi, n);
u = sin(x) + 0.5 * sin(3 * x);
alpha = 0.2;
e0 = sum(u .* u);
for s = 1:steps
    left = circshift(u, 1);
    right = circshift(u, -1);
    u = u + alpha * (left - 2 * u + right);
end
e1 = sum(u .* u);
fprintf('energy %.6f -> %.6f (decay %.4f)\\n', e0, e1, e1 / e0);
"""


def main() -> None:
    program = OtterCompiler().compile(SCRIPT, name="heat")

    print("=== physics check (4 CPUs, Meiko model) ===")
    result = program.run(nprocs=4, machine=MEIKO_CS2)
    print(result.output.strip())
    print("collectives used:", dict(result.spmd.collective_counts))

    print("\n=== stencil scaling: 150 steps x 2 shifts/step ===")
    header = f"{'CPUs':>6s}" + "".join(
        f"{m.name:>26s}" for m in (MEIKO_CS2, SUN_ENTERPRISE,
                                   SPARC20_CLUSTER))
    print(header)
    print("-" * len(header))
    base = {}
    for p in (1, 2, 4, 8, 16):
        row = [f"{p:6d}"]
        for machine in (MEIKO_CS2, SUN_ENTERPRISE, SPARC20_CLUSTER):
            if p > machine.max_cpus:
                row.append(f"{'-':>26s}")
                continue
            elapsed = program.run(nprocs=p, machine=machine).elapsed
            base.setdefault(machine.name, elapsed)
            row.append(f"{base[machine.name] / elapsed:25.1f}x")
        print("".join(row))
    print("\nEvery step pays two neighbour exchanges: latency-bound on "
          "the Meiko,\nbus-bound on the SMP, and wire-bound across the "
          "Ethernet cluster's nodes.")


if __name__ == "__main__":
    main()
